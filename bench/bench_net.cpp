// E18 — the heterogeneous network core under the observed-Delta oracle: a
// topology x latency x bandwidth sweep with golden digest pins, plus the
// hetero oracle band (every run graded, never '!' or 'u').
//
// Three gates, in report order:
//
//   1. façade gate — hetero_transport_probe with the DEGENERATE NetConfig
//      must reproduce balance_transport_probe's golden pin bit-identically
//      (the event-core refactor's contract with the lockstep model);
//   2. pinned matrix — every heterogeneous cell's digest (which folds the
//      delivery order, adopted heads, AND the recovered observed Delta) must
//      match its pin: any drift in relay order, latency draws, bandwidth
//      spillover, or the inflation rule fails the process;
//   3. hetero band — topology x strategy x latency cells, every execution
//      graded by oracle::check_execution: within the configured Delta the
//      full domination invariant set must hold, beyond it the run must
//      re-project at its observed Delta ('d'), never breach ('!') and never
//      go unbounded ('u' — the topology set is strongly connected).
//
// MH_NET_QUICK shrinks the band's per-cell runs for CI smoke; the pinned
// matrix always runs in full (that is the drift gate CI exists to catch).
// The env spotlight cell applies the strict MH_NET_* knobs on top of a ring
// base, so a CI job (or a laptop) can steer one extra shape without a
// rebuild; it prints its digest and observed Delta but pins nothing.
#include <benchmark/benchmark.h>

#include "bench_harness.hpp"

#include <cstdio>
#include <string>
#include <vector>

#include "delta/semi_sync.hpp"
#include "engine/seed_sequence.hpp"
#include "engine/thread_pool.hpp"
#include "oracle/oracle.hpp"
#include "protocol/net/config.hpp"
#include "protocol/transport_probe.hpp"
#include "support/table.hpp"

namespace {

using mh::net::LatencyKind;
using mh::net::LatencyLaw;
using mh::net::NetConfig;
using mh::net::TopologyKind;

// --- the pinned heterogeneous matrix ----------------------------------------

constexpr std::size_t kPinParties = 16;
constexpr std::size_t kPinHorizon = 128;
constexpr std::uint64_t kPinSeed = 1804;
constexpr std::size_t kPinDelta = 2;

struct NetCell {
  const char* name;
  TopologyKind topology;
  std::size_t k;
  LatencyLaw latency;
  std::size_t bandwidth;
  std::uint64_t pin;  ///< golden digest; 0 = unpinned (print-only)
};

NetConfig cell_config(const NetCell& cell) {
  NetConfig cfg;
  cfg.topology = cell.topology;
  cfg.k = cell.k;
  cfg.latency = cell.latency;
  cfg.bandwidth = cell.bandwidth;
  return cfg;
}

// Every axiom relaxation of EXPERIMENTS.md E18 appears at least once:
// non-mesh who-ships-to-whom (A0's implicit diffusion), per-link latency laws
// (A4_Delta's uniform bound), and egress caps (the model's free simultaneous
// broadcast). Pins are regenerated ONLY for an intentional semantic change.
const NetCell kPinnedCells[] = {
    {"ring/deg0/bw-inf", TopologyKind::Ring, 3, {LatencyKind::Degenerate, 0, 0, 0.5}, 0,
     0xfa80dbe4bc666990ULL},
    {"ring/uni2/bw-inf", TopologyKind::Ring, 3, {LatencyKind::Uniform, 0, 2, 0.5}, 0,
     0x598644741dc33365ULL},
    {"ring/geo.5c2/bw1", TopologyKind::Ring, 3, {LatencyKind::Geometric, 0, 2, 0.5}, 1,
     0x7cb2fcc8d5e607e5ULL},
    {"rand3/deg0/bw-inf", TopologyKind::RandomK, 3, {LatencyKind::Degenerate, 0, 0, 0.5}, 0,
     0xc94f92f064939321ULL},
    {"rand3/geo.3c3/bw-inf", TopologyKind::RandomK, 3, {LatencyKind::Geometric, 0, 3, 0.3}, 0,
     0x38b884666db4fd32ULL},
    {"2cluster/deg0/bw-inf", TopologyKind::TwoClusterBridge, 3,
     {LatencyKind::Degenerate, 0, 0, 0.5}, 0, 0xea32f4091082b0a0ULL},
    {"2cluster/uni2/bw2", TopologyKind::TwoClusterBridge, 3, {LatencyKind::Uniform, 0, 2, 0.5},
     2, 0xa53a35b90e3cb53fULL},
    {"mesh/fix1/bw-inf", TopologyKind::FullMesh, 3, {LatencyKind::Degenerate, 1, 0, 0.5}, 0,
     0x71f34a5439739ab3ULL},
    {"mesh/uni2/bw-inf", TopologyKind::FullMesh, 3, {LatencyKind::Uniform, 0, 2, 0.5}, 0,
     0x830b9e4a0685638cULL},
    {"mesh/deg0/bw1", TopologyKind::FullMesh, 3, {LatencyKind::Degenerate, 0, 0, 0.5}, 1,
     0x97cc95e63479c418ULL},
};
constexpr std::size_t kPinnedCellCount = sizeof(kPinnedCells) / sizeof(kPinnedCells[0]);

struct CellRecord {
  std::string name;
  std::string shape;
  std::uint64_t digest = 0;
  std::uint64_t pin = 0;
  std::size_t blocks = 0;
  std::size_t observed_delta = 0;
  double ms = 0.0;
};
std::vector<CellRecord> g_cell_records;

// --- the hetero oracle band --------------------------------------------------

struct BandCell {
  const char* name;
  TopologyKind topology;
  LatencyLaw latency;
  std::size_t bandwidth;
  mh::oracle::Strategy strategy;
};

const BandCell kBandCells[] = {
    {"mesh/uni2/balance", TopologyKind::FullMesh, {LatencyKind::Uniform, 0, 2, 0.5}, 0,
     mh::oracle::Strategy::Balance},
    {"ring/deg0/balance", TopologyKind::Ring, {LatencyKind::Degenerate, 0, 0, 0.5}, 0,
     mh::oracle::Strategy::Balance},
    {"ring/uni2/random", TopologyKind::Ring, {LatencyKind::Uniform, 0, 2, 0.5}, 0,
     mh::oracle::Strategy::Randomized},
    {"rand2/geo.4c3/balance", TopologyKind::RandomK, {LatencyKind::Geometric, 0, 3, 0.4}, 0,
     mh::oracle::Strategy::Balance},
    {"rand2/uni2/private", TopologyKind::RandomK, {LatencyKind::Uniform, 0, 2, 0.5}, 0,
     mh::oracle::Strategy::PrivateChain},
    {"2cluster/uni2/balance", TopologyKind::TwoClusterBridge, {LatencyKind::Uniform, 0, 2, 0.5},
     0, mh::oracle::Strategy::Balance},
    {"2cluster/deg1/bw2/random", TopologyKind::TwoClusterBridge,
     {LatencyKind::Degenerate, 1, 0, 0.5}, 2, mh::oracle::Strategy::Randomized},
    {"mesh/geo.5c2/bw1/balance", TopologyKind::FullMesh, {LatencyKind::Geometric, 0, 2, 0.5},
     1, mh::oracle::Strategy::Balance},
};
constexpr std::size_t kBandCellCount = sizeof(kBandCells) / sizeof(kBandCells[0]);
constexpr std::uint64_t kBandSeed = 1808;

mh::oracle::RunConfig band_run_config(const BandCell& cell) {
  mh::oracle::RunConfig rc;
  rc.law = mh::theorem7_law(1.0, 0.25, 0.45);
  rc.strategy = cell.strategy;
  rc.delta = 1;
  rc.horizon = 96;
  rc.target_slot = 4;
  rc.k = 8;
  rc.honest_parties = 8;
  rc.net.topology = cell.topology;
  rc.net.k = 2;
  rc.net.latency = cell.latency;
  rc.net.bandwidth = cell.bandwidth;
  return rc;
}

struct BandOutcome {
  bool clean = false;
  std::size_t runs = 0;
  std::size_t violations = 0;   // 'V' — simulated AND analytically allowed
  std::size_t degraded = 0;     // 'd' — re-projected at the observed Delta
  std::size_t breaches = 0;     // '!' + 'u' — the gate
  std::size_t max_observed_delta = 0;
};
BandOutcome g_band;
bool g_facade_ok = false;
bool g_pins_ok = false;
bool g_band_dirty = false;  // set by the timed iterations too

// --- report sections ---------------------------------------------------------

bool facade_gate_report() {
  const mh::TransportProbeOutcome legacy = mh::balance_transport_probe(
      mh::kBalanceProbePinParties, mh::kBalanceProbePinHorizon, mh::kBalanceProbePinSeed);
  const mh::TransportProbeOutcome event_core =
      mh::hetero_transport_probe(mh::kBalanceProbePinParties, mh::kBalanceProbePinHorizon,
                                 mh::kBalanceProbePinSeed, 0, NetConfig::degenerate());
  const bool facade = event_core.digest == legacy.digest;
  const bool pin = legacy.digest == mh::kBalanceProbePinDigest;
  std::printf("façade gate (degenerate NetConfig vs lockstep transport):\n");
  std::printf("  event-core  : 0x%016llx\n  lockstep    : 0x%016llx -> %s\n",
              static_cast<unsigned long long>(event_core.digest),
              static_cast<unsigned long long>(legacy.digest),
              facade ? "identical" : "DRIFT");
  std::printf("  golden pin  : 0x%016llx -> %s\n\n",
              static_cast<unsigned long long>(mh::kBalanceProbePinDigest),
              pin ? "held" : "DRIFT");
  g_facade_ok = facade && pin;
  return g_facade_ok;
}

bool pinned_matrix_report() {
  std::printf("pinned heterogeneous matrix (%zu parties x %zu slots, seed %llu, Delta=%zu):\n",
              kPinParties, kPinHorizon, static_cast<unsigned long long>(kPinSeed), kPinDelta);
  mh::TextTable table({"cell", "shape", "blocks", "obsD", "digest", "pin", "ms"});
  bool ok = true;
  g_cell_records.clear();
  for (const NetCell& cell : kPinnedCells) {
    const NetConfig cfg = cell_config(cell);
    const mh::TransportProbeOutcome out =
        mh::hetero_transport_probe(kPinParties, kPinHorizon, kPinSeed, kPinDelta, cfg);
    const bool match = cell.pin == 0 || out.digest == cell.pin;
    ok = ok && match;
    char digest_hex[32], pin_hex[32];
    std::snprintf(digest_hex, sizeof digest_hex, "0x%016llx",
                  static_cast<unsigned long long>(out.digest));
    std::snprintf(pin_hex, sizeof pin_hex, "%s",
                  match ? (cell.pin == 0 ? "(unpinned)" : "held") : "DRIFT");
    table.add_row({cell.name, cfg.describe(), std::to_string(out.blocks),
                   std::to_string(out.observed_delta), digest_hex, pin_hex,
                   std::to_string(static_cast<int>(out.seconds * 1e3))});
    g_cell_records.push_back({cell.name, cfg.describe(), out.digest, cell.pin, out.blocks,
                              out.observed_delta, out.seconds * 1e3});
    if (!match)
      std::printf("DIGEST DRIFT in cell %s: got 0x%016llx, pinned 0x%016llx\n", cell.name,
                  static_cast<unsigned long long>(out.digest),
                  static_cast<unsigned long long>(cell.pin));
  }
  std::printf("%s\n", table.render().c_str());
  g_pins_ok = ok;
  return ok;
}

bool hetero_band_report() {
  const std::size_t runs_per_cell = mh::bench::env_flag("MH_NET_QUICK") ? 4 : 16;
  const std::size_t threads = mh::engine::threads_from_env();
  std::printf(
      "hetero oracle band: %zu cells x %zu executions (seed %llu)\n"
      "(every run graded at its observed Delta: 'd' degrades gracefully,\n"
      " '!' breaches an invariant, 'u' would mean an unbounded delay)\n\n",
      kBandCellCount, runs_per_cell, static_cast<unsigned long long>(kBandSeed));

  g_band = BandOutcome{};
  g_band.runs = kBandCellCount * runs_per_cell;
  std::string codes(g_band.runs, '?');
  std::vector<std::size_t> observed(g_band.runs, 0);
  const mh::engine::SeedSequence streams(kBandSeed);
  // One counter-based stream per (cell, run): the band is bit-identical
  // across MH_THREADS values, exactly like the scenario matrix.
  mh::engine::for_each_index(g_band.runs, threads, [&](std::size_t i) {
    const mh::oracle::RunConfig rc = band_run_config(kBandCells[i / runs_per_cell]);
    mh::Rng rng = streams.stream(i);
    const mh::oracle::RunVerdict v = mh::oracle::check_execution(rc, rng);
    codes[i] = v.code();
    observed[i] = v.observed_delta;
  });

  mh::TextTable table({"cell", "strategy", "codes", "maxObsD"});
  bool clean = true;
  for (std::size_t c = 0; c < kBandCellCount; ++c) {
    const std::string cell_codes = codes.substr(c * runs_per_cell, runs_per_cell);
    std::size_t max_obs = 0;
    for (std::size_t r = 0; r < runs_per_cell; ++r) {
      const char code = cell_codes[r];
      max_obs = std::max(max_obs, observed[c * runs_per_cell + r]);
      if (code == 'V') ++g_band.violations;
      if (code == 'd') ++g_band.degraded;
      if (code == '!' || code == 'u') {
        ++g_band.breaches;
        clean = false;
        std::printf("ORACLE BREACH '%c' in cell %s run %zu (band seed %llu, stream %zu)\n",
                    code, kBandCells[c].name, r, static_cast<unsigned long long>(kBandSeed),
                    c * runs_per_cell + r);
      }
    }
    g_band.max_observed_delta = std::max(g_band.max_observed_delta, max_obs);
    table.add_row({kBandCells[c].name, mh::oracle::strategy_name(kBandCells[c].strategy),
                   cell_codes, std::to_string(max_obs)});
  }
  std::printf("%s\n", table.render().c_str());
  std::printf("totals: %zu runs, %zu violations, %zu degraded, %zu breaches -> %s\n\n",
              g_band.runs, g_band.violations, g_band.degraded, g_band.breaches,
              clean ? "clean" : "DIRTY");
  g_band.clean = clean;
  return clean;
}

void env_spotlight_report() {
  NetConfig base;
  base.topology = TopologyKind::Ring;
  const NetConfig cfg = mh::net::net_config_from_env(base);
  const mh::TransportProbeOutcome out =
      mh::hetero_transport_probe(kPinParties, kPinHorizon, kPinSeed, kPinDelta, cfg);
  std::printf("env spotlight (MH_NET_* over a ring base): %s\n", cfg.describe().c_str());
  std::printf("  digest 0x%016llx, %zu blocks, observed Delta %zu\n\n",
              static_cast<unsigned long long>(out.digest), out.blocks, out.observed_delta);
}

// --- timed benchmarks --------------------------------------------------------

// One heterogeneous probe per topology kind: the sweep's unit of work
// (gossip relay + latency draws + the end-of-run net audit).
void BM_HeteroProbe(benchmark::State& state) {
  const NetCell& cell = kPinnedCells[static_cast<std::size_t>(state.range(0))];
  const NetConfig cfg = cell_config(cell);
  for (auto _ : state) {
    const mh::TransportProbeOutcome out =
        mh::hetero_transport_probe(kPinParties, kPinHorizon, kPinSeed, kPinDelta, cfg);
    if (cell.pin != 0 && out.digest != cell.pin) {
      g_band_dirty = true;
      state.SkipWithError("pinned digest drifted in timed run");
    }
    benchmark::DoNotOptimize(out.digest);
  }
  state.SetLabel(cell.name);
}
BENCHMARK(BM_HeteroProbe)->Arg(1)->Arg(4)->Arg(6)->Unit(benchmark::kMillisecond);

// One graded heterogeneous execution end to end (simulate + net audit +
// observed-Delta projection): the band's unit of work.
void BM_HeteroGradedExecution(benchmark::State& state) {
  const BandCell& cell = kBandCells[static_cast<std::size_t>(state.range(0))];
  const mh::oracle::RunConfig rc = band_run_config(cell);
  const mh::engine::SeedSequence streams(kBandSeed);
  std::uint64_t i = 0;
  for (auto _ : state) {
    mh::Rng rng = streams.stream(i++);
    const mh::oracle::RunVerdict v = mh::oracle::check_execution(rc, rng);
    if (v.code() == '!' || v.code() == 'u') {
      g_band_dirty = true;
      state.SkipWithError("hetero execution broke an invariant");
    }
    benchmark::DoNotOptimize(v.observed_delta);
  }
  state.SetLabel(cell.name);
}
BENCHMARK(BM_HeteroGradedExecution)->Arg(0)->Arg(2)->Arg(5)->Unit(benchmark::kMicrosecond);

}  // namespace

int main(int argc, char** argv) {
  mh::bench::MainOptions options;
  options.post_run_clean = [] { return !g_band_dirty; };
  options.results = [] {
    mh::obs::Json cells = mh::obs::Json::array();
    for (const CellRecord& rec : g_cell_records) {
      mh::obs::Json cell = mh::obs::Json::object();
      cell.set("name", rec.name);
      cell.set("shape", rec.shape);
      cell.set("digest", rec.digest);
      cell.set("pin", rec.pin);
      cell.set("blocks", static_cast<std::uint64_t>(rec.blocks));
      cell.set("observed_delta", static_cast<std::uint64_t>(rec.observed_delta));
      cell.set("ms", rec.ms);
      cells.push(std::move(cell));
    }
    mh::obs::Json results = mh::obs::Json::object();
    results.set("facade_ok", g_facade_ok);
    results.set("pins_ok", g_pins_ok);
    results.set("cells", std::move(cells));
    results.set("band_clean", g_band.clean);
    results.set("band_runs", static_cast<std::uint64_t>(g_band.runs));
    results.set("band_violations", static_cast<std::uint64_t>(g_band.violations));
    results.set("band_degraded", static_cast<std::uint64_t>(g_band.degraded));
    results.set("band_breaches", static_cast<std::uint64_t>(g_band.breaches));
    results.set("band_max_observed_delta",
                static_cast<std::uint64_t>(g_band.max_observed_delta));
    return results;
  };
  return mh::bench::run_main(argc, argv, "net", [] {
    const bool facade_ok = facade_gate_report();
    const bool pins_ok = pinned_matrix_report();
    const bool band_ok = hetero_band_report();
    env_spotlight_report();
    return facade_ok && pins_ok && band_ok;
  }, options);
}
