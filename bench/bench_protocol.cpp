// E11 — end-to-end protocol experiments: the private-chain and balance
// attackers against the simulated PoS protocol, under both tie-breaking
// regimes (axioms A0 vs A0'), including the ph = 0 corner of Theorem 2.
// Expected shape: observed violation rates never exceed the exact optimal
// probability; the balance attack thrives on concurrent honest leaders under
// A0 and collapses under A0'.
#include <benchmark/benchmark.h>

#include "bench_harness.hpp"

#include <cstdio>

#include "core/exact_dp.hpp"
#include "engine/thread_pool.hpp"
#include "sim/experiments.hpp"
#include "support/table.hpp"

namespace {

void attack_report() {
  std::printf("Protocol-level settlement attacks (slot s = 1, depth k = 20,\n");
  std::printf("horizon 120, 8 honest parties, 250 runs per cell)\n\n");
  mh::TextTable table({"law (ph,pH,pA)", "attack", "tie-break", "violations [lo, hi]",
                       "exact optimal P(k)", "mean divergence"});

  struct LawCase {
    const char* name;
    mh::SymbolLaw law;
  };
  const LawCase laws[] = {
      {"(.40,.25,.35)", mh::SymbolLaw{0.40, 0.25, 0.35}},
      {"(.05,.60,.35)", mh::SymbolLaw{0.05, 0.60, 0.35}},  // ph < pA regime
      {"(.00,.65,.35)", mh::SymbolLaw{0.00, 0.65, 0.35}},  // Theorem-2 corner
  };
  for (const LawCase& lc : laws) {
    const long double exact = mh::settlement_violation_probability(lc.law, 20);
    for (const mh::AttackKind attack :
         {mh::AttackKind::Balance, mh::AttackKind::PrivateChain}) {
      for (const mh::TieBreak rule :
           {mh::TieBreak::AdversarialOrder, mh::TieBreak::ConsistentHash}) {
        mh::ProtocolExperimentConfig config;
        config.runs = 250;
        config.horizon = 120;
        config.honest_parties = 8;
        config.tie_break = rule;
        config.seed = 97;
        config.threads = mh::engine::threads_from_env();
        const mh::ProtocolExperimentResult result =
            mh::run_protocol_experiment(lc.law, attack, 1, 20, config);
        table.add_row(
            {lc.name, attack == mh::AttackKind::Balance ? "balance" : "private-chain",
             rule == mh::TieBreak::AdversarialOrder ? "A0 (adv)" : "A0' (consistent)",
             "[" + mh::fixed(result.settlement_violations.lo, 3) + ", " +
                 mh::fixed(result.settlement_violations.hi, 3) + "]",
             mh::paper_scientific(exact), mh::fixed(result.mean_slot_divergence, 1)});
      }
    }
  }
  std::printf("%s\n", table.render().c_str());
}

void BM_SimulationSlotLoop(benchmark::State& state) {
  const auto horizon = static_cast<std::size_t>(state.range(0));
  const mh::SymbolLaw law{0.4, 0.25, 0.35};
  mh::Rng rng(61);
  for (auto _ : state) {
    state.PauseTiming();
    const mh::LeaderSchedule schedule =
        mh::LeaderSchedule::from_symbol_law(law, horizon, 8, rng);
    mh::BalanceAttacker adversary;
    mh::Simulation sim(schedule, mh::SimulationConfig{mh::TieBreak::AdversarialOrder, rng()},
                       0, &adversary);
    state.ResumeTiming();
    sim.run();
    benchmark::DoNotOptimize(sim.all_blocks().size());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(horizon));
}
BENCHMARK(BM_SimulationSlotLoop)->Arg(100)->Arg(400)->Arg(1600);

}  // namespace

int main(int argc, char** argv) {
  return mh::bench::run_main(argc, argv, "protocol",
                             [] { attack_report(); return true; });
}
