// E19 — the epoch-managed consensus layer under the differential oracle: a
// stake-profile x shift-plan x strategy band where every execution draws its
// leaders through the per-slot VRF lottery (epoch nonces folded from the
// chain, stake redistributed at epoch boundaries) and is graded twice —
// globally through the Definition-22 reduction, and per epoch against the
// stake-induced law's exact Clopper-Pearson bands.
//
// Two gates, in report order:
//
//   1. epoch band — every cell's every execution must grade: zero ungraded
//      epochs ('u' would mean the schedule never materialized a cell the
//      horizon covers) and zero invariant breaches ('!'); simulated
//      violations ('V') and quiet runs ('.'/'a') are outcomes, not failures;
//   2. spotlight — one shifted-stake execution unrolled epoch by epoch:
//      realized symbol counts vs the induced law of each epoch's stake
//      snapshot, every row inside its band.
//
// MH_EPOCH_QUICK shrinks the band's per-cell runs for CI smoke. The timed
// benchmark measures one graded epoch-managed execution end to end (lottery
// materialization + simulation + projection + per-epoch banding).
#include <benchmark/benchmark.h>

#include "bench_harness.hpp"

#include <cstdio>
#include <string>
#include <vector>

#include "engine/seed_sequence.hpp"
#include "engine/thread_pool.hpp"
#include "oracle/epoch.hpp"
#include "support/table.hpp"

namespace {

using mh::consensus::StakeShiftSpec;
using mh::oracle::EpochRunConfig;
using mh::oracle::EpochVerdict;
using mh::oracle::Strategy;

constexpr std::uint64_t kBandSeed = 1904;

struct EpochBandCell {
  const char* name;
  std::vector<double> honest_stakes;  ///< empty = uniform over six parties
  double adversarial_stake;
  std::vector<StakeShiftSpec> shifts;
  std::size_t nonce_window;  ///< 0 = the 2R/3 default
  std::size_t delta;
  Strategy strategy;
};

// Profiles cover every axis the layer added: skew (per-party shares), both
// shift directions (coalition buys in / honest stake churns), a deliberately
// small nonce window (the grinding-protection margin at its thinnest), and a
// Delta > 0 cell so the per-epoch laws pass through a non-trivial reduction.
const EpochBandCell kBandCells[] = {
    {"uniform/private", {}, 0.25, {}, 0, 0, Strategy::PrivateChain},
    {"uniform/balance", {}, 0.25, {}, 0, 0, Strategy::Balance},
    {"skewed/private", {0.40, 0.12, 0.08, 0.08, 0.05, 0.02}, 0.25, {}, 0, 0,
     Strategy::PrivateChain},
    {"shift-adv/private", {}, 0.25,
     {{1, 0, 0.0625}, {1, mh::kAdversary, 0.3125}}, 0, 0, Strategy::PrivateChain},
    {"shift-honest/random", {}, 0.2,
     {{1, 0, 0.30}, {1, 1, 0.05}, {2, 2, 0.25}, {2, 3, 0.05}}, 0, 0, Strategy::Randomized},
    {"grind-window4/private", {}, 0.25, {}, 4, 0, Strategy::PrivateChain},
    {"uniform/delta1/balance", {}, 0.25, {}, 0, 1, Strategy::Balance},
};
constexpr std::size_t kBandCellCount = sizeof(kBandCells) / sizeof(kBandCells[0]);

EpochRunConfig band_run_config(const EpochBandCell& cell) {
  EpochRunConfig config;
  config.consensus.f = 0.5;
  config.consensus.epoch.epoch_length = 32;
  config.consensus.epoch.nonce_window = cell.nonce_window;
  config.honest_stakes = cell.honest_stakes;
  config.honest_parties = 6;
  config.adversarial_stake = cell.adversarial_stake;
  config.shifts = cell.shifts;
  config.strategy = cell.strategy;
  config.delta = cell.delta;
  config.target_slot = 2;
  config.k = 6;
  config.horizon = 96;
  return config;
}

struct BandOutcome {
  bool clean = false;
  std::size_t runs = 0;
  std::size_t violations = 0;  // 'V'
  std::size_t quiet = 0;       // '.' + 'a'
  std::size_t breaches = 0;    // '!'
  std::size_t ungraded = 0;    // 'u' — an epoch cell the oracle never graded
  std::size_t epoch_cells = 0; // graded per-epoch cells across the band
};
BandOutcome g_band;
std::vector<std::string> g_cell_codes;  // per band cell, for the results JSON
bool g_dirty = false;                   // set by the timed iterations too

bool epoch_band_report() {
  const std::size_t runs_per_cell = mh::bench::env_flag("MH_EPOCH_QUICK") ? 4 : 16;
  const std::size_t threads = mh::engine::threads_from_env();
  std::printf(
      "epoch oracle band: %zu cells x %zu executions (seed %llu)\n"
      "(epoch-managed lottery, nonce folded from the chain; every run graded\n"
      " globally AND per epoch: 'u' = ungraded epoch cell, '!' = breach)\n\n",
      kBandCellCount, runs_per_cell, static_cast<unsigned long long>(kBandSeed));

  g_band = BandOutcome{};
  g_band.runs = kBandCellCount * runs_per_cell;
  std::string codes(g_band.runs, '?');
  std::vector<std::size_t> graded_cells(g_band.runs, 0);
  const mh::engine::SeedSequence streams(kBandSeed);
  // One counter-based stream per (cell, run): bit-identical across MH_THREADS.
  mh::engine::for_each_index(g_band.runs, threads, [&](std::size_t i) {
    const EpochRunConfig config = band_run_config(kBandCells[i / runs_per_cell]);
    mh::Rng rng = streams.stream(i);
    const EpochVerdict v = mh::oracle::check_epoch_execution(config, rng);
    codes[i] = v.code();
    graded_cells[i] = v.cells.size();
  });

  mh::TextTable table({"cell", "strategy", "codes", "epochs"});
  bool clean = true;
  g_cell_codes.assign(kBandCellCount, "");
  for (std::size_t c = 0; c < kBandCellCount; ++c) {
    const std::string cell_codes = codes.substr(c * runs_per_cell, runs_per_cell);
    g_cell_codes[c] = cell_codes;
    std::size_t epochs = 0;
    for (std::size_t r = 0; r < runs_per_cell; ++r) {
      const char code = cell_codes[r];
      epochs += graded_cells[c * runs_per_cell + r];
      if (code == 'V') ++g_band.violations;
      if (code == '.' || code == 'a') ++g_band.quiet;
      if (code == '!' || code == 'u') {
        if (code == '!') ++g_band.breaches;
        if (code == 'u') ++g_band.ungraded;
        clean = false;
        std::printf("ORACLE BREACH '%c' in cell %s run %zu (band seed %llu, stream %zu)\n",
                    code, kBandCells[c].name, r, static_cast<unsigned long long>(kBandSeed),
                    c * runs_per_cell + r);
      }
    }
    g_band.epoch_cells += epochs;
    table.add_row({kBandCells[c].name, mh::oracle::strategy_name(kBandCells[c].strategy),
                   cell_codes, std::to_string(epochs)});
  }
  std::printf("%s\n", table.render().c_str());
  std::printf(
      "totals: %zu runs, %zu epoch cells graded, %zu violations, %zu quiet, "
      "%zu breaches, %zu ungraded -> %s\n\n",
      g_band.runs, g_band.epoch_cells, g_band.violations, g_band.quiet, g_band.breaches,
      g_band.ungraded, clean ? "clean" : "DIRTY");
  g_band.clean = clean;
  return clean;
}

bool spotlight_report() {
  // One shifted-stake execution, unrolled: each epoch's realized symbol
  // counts against the law its stake snapshot induces.
  const EpochRunConfig config = band_run_config(kBandCells[3]);  // shift-adv
  mh::Rng rng = mh::engine::SeedSequence(kBandSeed).stream(9001);
  const EpochVerdict v = mh::oracle::check_epoch_execution(config, rng);
  std::printf("spotlight: %s, one execution (code '%c')\n", kBandCells[3].name, v.code());
  mh::TextTable table(
      {"epoch", "nonce", "slots", "Bot/h/H/A", "induced (pBot,ph,pH,pA)", "band"});
  for (const mh::oracle::EpochCell& cell : v.cells) {
    char nonce_hex[24], counts[32], law[64];
    std::snprintf(nonce_hex, sizeof nonce_hex, "0x%012llx",
                  static_cast<unsigned long long>(cell.nonce));
    std::snprintf(counts, sizeof counts, "%zu/%zu/%zu/%zu", cell.counts[0], cell.counts[1],
                  cell.counts[2], cell.counts[3]);
    std::snprintf(law, sizeof law, "%.3f,%.3f,%.3f,%.3f", cell.induced.pBot, cell.induced.ph,
                  cell.induced.pH, cell.induced.pA);
    table.add_row({std::to_string(cell.epoch), nonce_hex, std::to_string(cell.slots), counts,
                   law, cell.law_within_band ? "within" : "OUTSIDE"});
  }
  std::printf("%s\n", table.render().c_str());
  return v.clean();
}

// One graded epoch-managed execution end to end: lottery materialization,
// simulation, Definition-22 projection, per-epoch banding.
void BM_EpochExecution(benchmark::State& state) {
  const EpochBandCell& cell = kBandCells[static_cast<std::size_t>(state.range(0))];
  const EpochRunConfig config = band_run_config(cell);
  const mh::engine::SeedSequence streams(kBandSeed);
  std::uint64_t i = 0;
  for (auto _ : state) {
    mh::Rng rng = streams.stream(i++);
    const EpochVerdict v = mh::oracle::check_epoch_execution(config, rng);
    if (v.code() == '!' || v.code() == 'u') {
      g_dirty = true;
      state.SkipWithError("epoch execution broke an invariant");
    }
    benchmark::DoNotOptimize(v.all_graded);
  }
  state.SetLabel(cell.name);
}
BENCHMARK(BM_EpochExecution)->Arg(0)->Arg(3)->Arg(5)->Unit(benchmark::kMicrosecond);

}  // namespace

int main(int argc, char** argv) {
  mh::bench::MainOptions options;
  options.post_run_clean = [] { return !g_dirty; };
  options.results = [] {
    mh::obs::Json cells = mh::obs::Json::array();
    for (std::size_t c = 0; c < kBandCellCount; ++c) {
      mh::obs::Json cell = mh::obs::Json::object();
      cell.set("name", kBandCells[c].name);
      cell.set("strategy", mh::oracle::strategy_name(kBandCells[c].strategy));
      cell.set("codes", c < g_cell_codes.size() ? g_cell_codes[c] : "");
      cells.push(std::move(cell));
    }
    mh::obs::Json results = mh::obs::Json::object();
    results.set("band_clean", g_band.clean);
    results.set("band_runs", static_cast<std::uint64_t>(g_band.runs));
    results.set("epoch_cells_graded", static_cast<std::uint64_t>(g_band.epoch_cells));
    results.set("violations", static_cast<std::uint64_t>(g_band.violations));
    results.set("quiet", static_cast<std::uint64_t>(g_band.quiet));
    results.set("breaches", static_cast<std::uint64_t>(g_band.breaches));
    results.set("ungraded", static_cast<std::uint64_t>(g_band.ungraded));
    results.set("cells", std::move(cells));
    return results;
  };
  return mh::bench::run_main(argc, argv, "epoch", [] {
    const bool band_ok = epoch_band_report();
    const bool spotlight_ok = spotlight_report();
    return band_ok && spotlight_ok;
  }, options);
}
