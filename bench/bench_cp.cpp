// E10 — Theorem 8: common-prefix violations. A k-CP^slot violation requires a
// length-k window with no UVP slot, so
//   Pr[w violates k-CP^slot] <= T * Bound1-tail(k).
// Reports the union bound next to a Monte-Carlo estimate of the window event
// and the observed CP behaviour of canonical-fork executions.
#include <benchmark/benchmark.h>

#include "bench_harness.hpp"

#include <cstdio>

#include "core/astar.hpp"
#include "core/cp.hpp"
#include "engine/engine.hpp"
#include "sim/monte_carlo.hpp"
#include "support/table.hpp"

namespace {

void cp_report() {
  const mh::SymbolLaw law = mh::bernoulli_condition(0.3, 0.4);
  const std::size_t horizon = 400;
  std::printf("Theorem 8: k-CP^slot over T = %zu slots (eps = 0.3, ph = 0.4)\n\n", horizon);
  mh::McOptions opt;
  opt.samples = 4'000;
  opt.seed = 4040;
  opt.threads = mh::engine::threads_from_env();
  mh::TextTable table(
      {"k", "T x Bound1 tail", "MC bad-window freq [lo, hi]", "A* fork CP violations"});
  for (std::size_t k : {10u, 20u, 30u, 45u, 60u}) {
    const mh::Proportion mc = mh::mc_cp_window_failure(law, horizon, k, opt);

    // Structural: run A* on shorter strings and check the canonical fork,
    // sharded over the engine (same strings for every k via a fixed root seed).
    const std::size_t fork_trials = 150, fork_len = 120;
    mh::engine::EngineOptions fork_opt;
    fork_opt.seed = 515151;
    fork_opt.threads = opt.threads;
    const std::size_t violations = mh::engine::run_sharded<std::size_t>(
        fork_trials, fork_opt, [&](std::uint64_t, mh::Rng& rng, std::size_t& bad) {
          const mh::CharString w = law.sample_string(fork_len, rng);
          const mh::Fork fork = mh::build_canonical_fork(w);
          if (!mh::satisfies_k_cp_slot(fork, w, k)) ++bad;
        });
    table.add_row({std::to_string(k),
                   mh::paper_scientific(mh::theorem8_bound(law, horizon, k)),
                   "[" + mh::paper_scientific(mc.lo) + ", " + mh::paper_scientific(mc.hi) + "]",
                   std::to_string(violations) + "/" + std::to_string(fork_trials)});
  }
  std::printf("%s\n", table.render().c_str());
}

void BM_CpSlotCheck(benchmark::State& state) {
  const mh::SymbolLaw law = mh::bernoulli_condition(0.3, 0.4);
  mh::Rng rng(21);
  const mh::CharString w = law.sample_string(160, rng);
  const mh::Fork fork = mh::build_canonical_fork(w);
  for (auto _ : state) benchmark::DoNotOptimize(mh::satisfies_k_cp_slot(fork, w, 20));
}
BENCHMARK(BM_CpSlotCheck);

void BM_SlotDivergence(benchmark::State& state) {
  const mh::SymbolLaw law = mh::bernoulli_condition(0.3, 0.4);
  mh::Rng rng(22);
  const mh::CharString w = law.sample_string(160, rng);
  const mh::Fork fork = mh::build_canonical_fork(w);
  for (auto _ : state) benchmark::DoNotOptimize(mh::slot_divergence(fork, w));
}
BENCHMARK(BM_SlotDivergence);

}  // namespace

int main(int argc, char** argv) {
  return mh::bench::run_main(argc, argv, "cp",
                             [] { cp_report(); return true; });
}
