// E9 — Theorem 7: settlement in the Delta-synchronous setting. Sweeps the
// network delay bound Delta and the confirmation depth k, reporting
//   (a) the reduced-law epsilon' (condition (20) health),
//   (b) the Theorem-7 analytic bound (Bound 1 on the reduced string + the
//       Bound-3 walk tail),
//   (c) a Monte-Carlo estimate of the Lemma-2 certificate failing.
// Expected shape: error grows with Delta via the (1+Delta) eps/(1-eps)
// prefactor and collapses exponentially in k while condition (20) holds.
#include <benchmark/benchmark.h>

#include "bench_harness.hpp"

#include <cstdio>

#include "delta/delta_settlement.hpp"
#include "engine/thread_pool.hpp"
#include "sim/monte_carlo.hpp"
#include "support/table.hpp"

namespace {

void delta_sweep() {
  // Praos-flavored parameters: sparse slots (f small) buy Delta-resilience.
  const double f = 0.10, pA_share = 0.25;
  const mh::TetraLaw law = mh::theorem7_law(f, pA_share * f, 0.5 * f);
  std::printf("Theorem 7 sweep: f = %.2f, pA = %.3f, ph = %.3f, pH = %.3f\n\n", f, law.pA,
              law.ph, law.pH);

  std::printf("condition (20) health (reduced-law epsilon'):\n");
  mh::TextTable eps_table({"Delta", "eps'", "reduced pA", "reduced ph"});
  for (std::size_t delta = 0; delta <= 8; delta += 2) {
    const mh::SymbolLaw reduced = mh::reduced_law(law, delta);
    eps_table.add_row({std::to_string(delta), mh::fixed(reduced.epsilon(), 4),
                       mh::fixed(reduced.pA, 4), mh::fixed(reduced.ph, 4)});
  }
  std::printf("%s\n", eps_table.render().c_str());

  mh::McOptions opt;
  opt.samples = 3'000;
  opt.seed = 777;
  opt.threads = mh::engine::threads_from_env();
  mh::TextTable table({"Delta", "k", "Theorem-7 bound", "MC certificate failure [lo, hi]"});
  for (std::size_t delta : {0u, 2u, 4u}) {
    for (std::size_t k : {40u, 80u, 160u}) {
      const mh::Proportion mc = mh::mc_delta_settlement_failure(law, delta, k, opt);
      table.add_row({std::to_string(delta), std::to_string(k),
                     mh::paper_scientific(mh::theorem7_bound(law, delta, k)),
                     "[" + mh::paper_scientific(mc.lo) + ", " + mh::paper_scientific(mc.hi) +
                         "]"});
    }
  }
  std::printf("%s\n", table.render().c_str());
}

void BM_ReductionMap(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const mh::TetraLaw law = mh::theorem7_law(0.2, 0.05, 0.1);
  mh::Rng rng(12);
  const mh::TetraString w = law.sample_string(n, rng);
  for (auto _ : state) benchmark::DoNotOptimize(mh::reduce(w, 4).reduced.size());
}
BENCHMARK(BM_ReductionMap)->Arg(1024)->Arg(65536);

void BM_Theorem7Bound(benchmark::State& state) {
  const mh::TetraLaw law = mh::theorem7_law(0.1, 0.025, 0.05);
  for (auto _ : state) benchmark::DoNotOptimize(mh::theorem7_bound(law, 4, 100));
}
BENCHMARK(BM_Theorem7Bound);

}  // namespace

int main(int argc, char** argv) {
  return mh::bench::run_main(argc, argv, "delta",
                             [] { delta_sweep(); return true; });
}
