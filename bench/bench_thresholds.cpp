// E7 — the introduction's threshold comparison:
//
//   this work         : ph + pH > pA   error e^{-Theta(k)}
//   Praos / Genesis   : ph - pH > pA   error e^{-Theta(k)}   (H penalized)
//   Sleepy / SnowWhite: ph > pA        error e^{-Theta(sqrt k)}
//
// Sweeps the concurrent-leader mass pH at fixed eps and reports which analyses
// survive and the settlement error each one certifies at k = 200. Expected
// shape: Praos' certificate degrades and dies first as pH grows; Snow White
// dies when ph < pA; this work's exact error barely moves — the paper's
// headline claim that concurrent honest leaders do not hurt consistency.
//
// The exact column and every applicable Praos-collapsed law run as ONE
// engine-parallel sweep (mh::sweep_settlement_series, MH_THREADS fan-out) on
// the banded DP kernel.
#include <benchmark/benchmark.h>

#include "bench_harness.hpp"

#include <cstdio>

#include "analysis/baselines.hpp"
#include "analysis/sweep.hpp"
#include "analysis/thresholds.hpp"
#include "core/exact_dp.hpp"
#include "engine/thread_pool.hpp"
#include "support/table.hpp"

namespace {

void threshold_sweep() {
  const double pA = 0.30;
  const std::size_t k = 200;
  std::printf("Threshold sweep at pA = %.2f, k = %zu\n", pA, k);
  std::printf("(ph + pH = %.2f fixed; pH shifts honest mass into concurrency)\n\n", 1.0 - pA);

  // Assemble every DP cell of the table — the 9 exact laws plus each
  // applicable Praos-collapsed law — and run them as one sweep.
  const double pHs[] = {0.0, 0.10, 0.20, 0.30, 0.35, 0.45, 0.55, 0.65, 0.69};
  std::vector<mh::SymbolLaw> laws;
  std::vector<std::ptrdiff_t> praos_cell(std::size(pHs), -1);
  for (const double pH : pHs) laws.push_back(mh::SymbolLaw{1.0 - pA - pH, pH, pA});
  for (std::size_t i = 0; i < std::size(pHs); ++i) {
    if (mh::classify_regime(laws[i]).praos_applies) {
      praos_cell[i] = static_cast<std::ptrdiff_t>(laws.size());
      laws.push_back(mh::praos_collapsed_law(laws[i]));
    }
  }
  mh::SweepOptions opt;
  opt.threads = mh::engine::threads_from_env();
  const std::vector<mh::SettlementSeries> series = sweep_settlement_series(laws, k, opt);

  mh::TextTable table({"ph", "pH", "regimes (ours/Praos/SW)", "exact P(k)",
                       "Praos-certified", "SnowWhite-certified"});
  for (std::size_t i = 0; i < std::size(pHs); ++i) {
    const mh::SymbolLaw& law = laws[i];
    const mh::RegimeReport regime = mh::classify_regime(law);
    std::string regimes;
    regimes += regime.this_work_applies ? "Y" : "-";
    regimes += regime.praos_applies ? "Y" : "-";
    regimes += regime.snow_white_applies ? "Y" : "-";
    const long double praos =
        praos_cell[i] >= 0 ? series[static_cast<std::size_t>(praos_cell[i])].violation[k] : 1.0L;
    table.add_row({mh::fixed(law.ph, 2), mh::fixed(law.pH, 2), regimes,
                   mh::paper_scientific(series[i].violation[k]), mh::paper_scientific(praos),
                   mh::paper_scientific(mh::snow_white_settlement_error(law, k))});
  }
  std::printf("%s\n", table.render().c_str());
}

void beyond_prior_analyses() {
  // The regime no prior analysis covers: ph < pA yet ph + pH > pA.
  std::printf("Beyond prior analyses: ph < pA (uniquely honest slots rarer than\n");
  std::printf("adversarial ones), consistency still settles exponentially:\n\n");
  const mh::SymbolLaw law{0.05, 0.60, 0.35};
  const mh::SettlementSeries series = mh::exact_settlement_series(law, 500);
  mh::TextTable table({"k", "exact P(k)"});
  for (std::size_t k : {50u, 100u, 200u, 300u, 400u, 500u})
    table.add_row({std::to_string(k), mh::paper_scientific(series.violation[k])});
  std::printf("ph = %.2f < pA = %.2f, pH = %.2f\n%s\n", law.ph, law.pA, law.pH,
              table.render().c_str());
}

void BM_RegimeClassification(benchmark::State& state) {
  const mh::SymbolLaw law{0.2, 0.45, 0.35};
  for (auto _ : state) benchmark::DoNotOptimize(mh::classify_regime(law).this_work_applies);
}
BENCHMARK(BM_RegimeClassification);

void BM_PraosCertificate(benchmark::State& state) {
  const mh::SymbolLaw law{0.6, 0.05, 0.35};
  for (auto _ : state) benchmark::DoNotOptimize(mh::praos_settlement_error(law, 100));
}
BENCHMARK(BM_PraosCertificate);

}  // namespace

int main(int argc, char** argv) {
  return mh::bench::run_main(argc, argv, "thresholds",
                             [] { threshold_sweep(); beyond_prior_analyses(); return true; });
}
