// Shared driver for the bench/ executables.
//
// Every bench used to hand-roll the same main(): thread banner, a stdout
// report, benchmark::Initialize + RunSpecifiedBenchmarks, exit code. The
// harness centralizes that plus the observability plumbing:
//
//   * --list-metrics (or MH_OBS_DUMP=1): switch metric recording on and print
//     the registry snapshot as an aligned table after the run;
//   * MH_BENCH_JSON=<path>: write the unified "mh-bench-v1" artifact (run
//     metadata + metrics snapshot) — the BENCH_*.json files CI archives;
//   * median-of-N timing helpers (warmup + repetitions) for benches that
//     measure outside google-benchmark (e.g. bench_obs_overhead).
//
// The report callback returns false to fail the process (seed-pin drift,
// dirty oracle matrices); post_run_clean re-checks after the timed
// benchmarks, for flags the timed iterations may set.
#pragma once

#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "engine/thread_pool.hpp"
#include "obs/export.hpp"
#include "obs/obs.hpp"
#include "support/check.hpp"
#include "support/env.hpp"

namespace mh::bench {

/// Median of the samples (average of the middle two for even sizes).
inline double median(std::vector<double> samples) {
  MH_REQUIRE(!samples.empty());
  std::sort(samples.begin(), samples.end());
  const std::size_t mid = samples.size() / 2;
  if (samples.size() % 2 == 1) return samples[mid];
  return 0.5 * (samples[mid - 1] + samples[mid]);
}

/// Wall-clock median-of-reps of fn() in nanoseconds, after `warmup` untimed
/// calls.
template <class F>
inline double time_median_ns(F&& fn, std::size_t warmup, std::size_t reps) {
  MH_REQUIRE(reps >= 1);
  for (std::size_t i = 0; i < warmup; ++i) fn();
  std::vector<double> samples;
  samples.reserve(reps);
  for (std::size_t i = 0; i < reps; ++i) {
    const std::uint64_t begin = obs::now_ns();
    fn();
    samples.push_back(static_cast<double>(obs::now_ns() - begin));
  }
  return median(std::move(samples));
}

struct MainOptions {
  bool thread_banner = true;  ///< print the "engine: N thread(s)" header
  /// Re-checked after the timed benchmarks ran (they may flip failure flags
  /// the pre-run report cannot see); false fails the process.
  std::function<bool()> post_run_clean{};
  /// Bench-specific block for the MH_BENCH_JSON artifact; when unset the
  /// results block is just {"report_ok": ...}.
  std::function<obs::Json()> results{};
};

/// Strict boolean env knob — the shared parser in support/env.hpp, which
/// rejects malformed values instead of treating "false"/"off" as enabled.
inline bool env_flag(const char* name) { return ::mh::env::flag(name); }

/// The shared main(): report, timed benchmarks, metrics dump + JSON artifact.
/// `bench_name` is the artifact name stamped into MH_BENCH_JSON output.
inline int run_main(int argc, char** argv, const char* bench_name,
                    const std::function<bool()>& report, MainOptions options = {}) {
  // --list-metrics is ours, not google-benchmark's: strip it before
  // Initialize. Both it and MH_OBS_DUMP imply recording on.
  bool dump = env_flag("MH_OBS_DUMP");
  for (int i = 1; i < argc;) {
    if (std::strcmp(argv[i], "--list-metrics") == 0) {
      dump = true;
      for (int j = i; j + 1 < argc; ++j) argv[j] = argv[j + 1];
      argv[--argc] = nullptr;
    } else {
      ++i;
    }
  }
  if (dump) obs::set_enabled(true);

  if (options.thread_banner) engine::print_thread_banner();
  bool ok = report ? report() : true;

  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  if (options.post_run_clean) ok = options.post_run_clean() && ok;

  const obs::Snapshot snapshot = obs::Registry::global().snapshot();
  if (dump) {
    if (snapshot.empty())
      std::printf("\nmetrics: registry is empty%s\n",
                  obs::compiled() ? "" : " (hooks not compiled in; configure with -DMH_OBS=ON)");
    else
      std::printf("\n%s", obs::metrics_table(snapshot).c_str());
  }

  if (const char* path = std::getenv("MH_BENCH_JSON"); path != nullptr && *path != '\0') {
    obs::Json results = options.results ? options.results() : obs::Json::object();
    results.set("report_ok", ok);
    obs::JsonExporter::write_file(path, obs::RunMeta::current(bench_name), snapshot,
                                  std::move(results));
    std::printf("bench harness: wrote %s\n", path);
  }
  return ok ? 0 : 1;
}

}  // namespace mh::bench
