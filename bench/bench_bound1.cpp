// E5 — Bound 1: Pr[no uniquely honest Catalan slot in a k-window] decays as
// e^{-Theta(k)} with rate min(eps^3, eps^2 ph) (up to constants). Compares
//   (a) the sharp generating-function tail (the paper's dominating series),
//   (b) a Monte-Carlo estimate of the true event,
//   (c) the exact settlement-DP series (the downstream quantity),
// and fits the decay rates. Expected shape: (a) >= (b) everywhere; all three
// log-linear in k; fitted rates ordered GF <= DP (the Catalan route is the
// looser certificate).
#include <benchmark/benchmark.h>

#include "bench_harness.hpp"

#include <cstdio>
#include <vector>

#include "core/bounds.hpp"
#include "core/catalan.hpp"
#include "core/exact_dp.hpp"
#include "engine/thread_pool.hpp"
#include "genfunc/catalan_gf.hpp"
#include "sim/monte_carlo.hpp"
#include "support/table.hpp"

namespace {

void bound1_report() {
  struct Case {
    double eps, ph;
  };
  for (const Case c : {Case{0.3, 0.4}, Case{0.2, 0.1}, Case{0.5, 0.05}}) {
    const mh::SymbolLaw law = mh::bernoulli_condition(c.eps, c.ph);
    std::printf("Bound 1 at eps = %.2f, ph = %.2f (pH = %.2f, pA = %.2f)\n", c.eps, c.ph,
                law.pH, law.pA);
    std::printf("theorem-1 exponent parameter min(eps^3, eps^2 ph) = %.3e\n",
                mh::theorem1_exponent(law));
    std::printf("GF radius decay rate ln R = %.4e\n",
                static_cast<double>(mh::bound1_decay_rate(law)));

    const std::vector<std::size_t> ks{20, 40, 60, 80, 120, 160};
    const mh::CatalanGF gf(law, 4 * 160 + 64);
    const mh::SettlementSeries dp = mh::exact_settlement_series(law, 160);

    mh::TextTable table({"k", "GF tail (bound)", "MC estimate [lo, hi]", "exact DP P(k)"});
    mh::McOptions opt;
    opt.samples = 40'000;
    opt.seed = 2020;
    opt.threads = mh::engine::threads_from_env();
    std::vector<double> xs, gf_tail, dp_p;
    for (std::size_t k : ks) {
      const mh::Proportion mc = mh::mc_no_unique_catalan(law, k, opt);
      const long double tail = gf.smoothed_tail(k);
      table.add_row({std::to_string(k), mh::paper_scientific(tail),
                     "[" + mh::paper_scientific(mc.lo) + ", " + mh::paper_scientific(mc.hi) + "]",
                     mh::paper_scientific(dp.violation[k])});
      xs.push_back(static_cast<double>(k));
      gf_tail.push_back(static_cast<double>(tail));
      dp_p.push_back(static_cast<double>(dp.violation[k]));
    }
    std::printf("%s", table.render().c_str());
    std::printf("fitted decay rates: GF %.4e, exact DP %.4e\n\n",
                mh::fitted_decay_rate(xs, gf_tail), mh::fitted_decay_rate(xs, dp_p));
  }
}

void BM_CatalanGFConstruction(benchmark::State& state) {
  const auto order = static_cast<std::size_t>(state.range(0));
  const mh::SymbolLaw law = mh::bernoulli_condition(0.3, 0.3);
  for (auto _ : state) {
    const mh::CatalanGF gf(law, order);
    benchmark::DoNotOptimize(gf.smoothed_tail(order / 4));
  }
  state.SetComplexityN(static_cast<std::int64_t>(order));
}
BENCHMARK(BM_CatalanGFConstruction)->Arg(256)->Arg(1024)->Arg(4096)->Complexity();

void BM_CatalanFlagsLinear(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const mh::SymbolLaw law = mh::bernoulli_condition(0.3, 0.3);
  mh::Rng rng(5);
  const mh::CharString w = law.sample_string(n, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(mh::catalan_flags(w).catalan.size());
  }
}
BENCHMARK(BM_CatalanFlagsLinear)->Arg(1024)->Arg(65536);

}  // namespace

int main(int argc, char** argv) {
  return mh::bench::run_main(argc, argv, "bound1",
                             [] { bound1_report(); return true; });
}
