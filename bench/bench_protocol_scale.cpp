// E14 — the rewritten protocol transport at scale: deep-horizon executions
// with up to 1024 honest parties, exercising the slot-bucketed chain-synced
// Network and the lifted-ancestor BlockTree. Per-slot transport cost is
// proportional to the slot's NEW blocks, so wall-clock grows ~linearly in the
// horizon where the seed transport (full ancestor-chain rebroadcast + queue
// scans) grew quadratically — the "simulate long enough to see the
// linear-consistency regime" requirement.
//
// The report fans the (parties x horizon) sweep across engine::for_each_index
// (MH_THREADS) and prints blocks, wall-clock, and slots/s per cell. Before
// timing anything it verifies two golden seed pins — digests of a fixed
// balance-attack execution and a fixed randomized-adversary execution (the
// latter covers Delta-delays, partial leaks, and orphan flushes). Any
// transport or tree refactor that shifts delivery order, acceptance order, or
// the public view trips the pins and the process exits non-zero, failing the
// CI bench job.
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>

#include "chars/bernoulli.hpp"
#include "engine/seed_sequence.hpp"
#include "engine/thread_pool.hpp"
#include "protocol/adversary.hpp"
#include "support/table.hpp"

namespace {

constexpr mh::SymbolLaw kScaleLaw{0.4, 0.25, 0.35};

struct CellOutcome {
  std::size_t parties = 0;
  std::size_t horizon = 0;
  std::size_t blocks = 0;
  std::size_t divergence = 0;
  double seconds = 0.0;
  std::uint64_t digest = 0;
};

/// One seeded execution; the digest folds every order-sensitive observable:
/// creation order, public-tree acceptance order, per-node adopted heads.
template <typename MakeAdversary>
CellOutcome run_cell(std::size_t parties, std::size_t horizon, std::uint64_t seed,
                     std::size_t delta, MakeAdversary&& make_adversary) {
  mh::Rng rng(seed);
  const mh::LeaderSchedule schedule =
      mh::LeaderSchedule::from_symbol_law(kScaleLaw, horizon, parties, rng);
  auto adversary = make_adversary(rng());
  mh::Simulation sim(schedule,
                     mh::SimulationConfig{mh::TieBreak::AdversarialOrder, rng()}, delta,
                     adversary.get());
  const auto start = std::chrono::steady_clock::now();
  sim.run();
  CellOutcome out;
  out.seconds = std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
  out.parties = parties;
  out.horizon = horizon;
  out.blocks = sim.all_blocks().size();
  out.divergence = sim.observed_slot_divergence();
  std::uint64_t digest = mh::kFnvOffsetBasis;
  for (const mh::Block& b : sim.all_blocks()) digest = mh::fnv1a_accumulate(digest, b.hash);
  for (const mh::BlockHash h : sim.public_tree().arrival_order())
    digest = mh::fnv1a_accumulate(digest, h);
  for (const mh::HonestNode& node : sim.nodes())
    digest = mh::fnv1a_accumulate(digest, node.best_head());
  out.digest = mh::fnv1a_accumulate(digest, out.divergence);
  return out;
}

CellOutcome run_balance_cell(std::size_t parties, std::size_t horizon, std::uint64_t seed) {
  return run_cell(parties, horizon, seed, 0, [](std::uint64_t) {
    return std::make_unique<mh::BalanceAttacker>();
  });
}

// The golden transport pins: regenerate ONLY for an intentional semantic
// change (and say so in the commit). Values are thread-count independent
// (each execution is serial and purely seed-driven).
constexpr std::uint64_t kBalancePinSeed = 4242;
constexpr std::uint64_t kBalancePinDigest = 0xedb5caf17ab2f6d6ULL;
constexpr std::uint64_t kRandomizedPinSeed = 1717;
constexpr std::uint64_t kRandomizedPinDigest = 0x392faa91452afe13ULL;

bool check_seed_pins() {
  const CellOutcome balance = run_balance_cell(8, 512, kBalancePinSeed);
  const CellOutcome randomized =
      run_cell(6, 256, kRandomizedPinSeed, 2, [](std::uint64_t seed) {
        return std::make_unique<mh::RandomizedAdversary>(seed);
      });
  const bool ok = balance.digest == kBalancePinDigest &&
                  randomized.digest == kRandomizedPinDigest;
  std::printf("seed pins: balance 0x%016llx (want 0x%016llx), randomized 0x%016llx "
              "(want 0x%016llx) -> %s\n\n",
              static_cast<unsigned long long>(balance.digest),
              static_cast<unsigned long long>(kBalancePinDigest),
              static_cast<unsigned long long>(randomized.digest),
              static_cast<unsigned long long>(kRandomizedPinDigest),
              ok ? "ok" : "DRIFT");
  return ok;
}

void sweep_report() {
  // The quick sweep: every party-count axis value at horizons the seed
  // transport could not reach interactively; the registered benchmarks carry
  // the deep cells (horizon up to 1e5).
  struct ScaleCell {
    std::size_t parties;
    std::size_t horizon;
  };
  constexpr ScaleCell cells[] = {
      {16, 10000}, {64, 10000}, {256, 2500}, {1024, 1000},
  };
  constexpr std::size_t n = sizeof(cells) / sizeof(cells[0]);
  std::vector<CellOutcome> outcomes(n);
  const mh::engine::SeedSequence seeds(97);
  mh::engine::for_each_index(n, mh::engine::threads_from_env(), [&](std::size_t i) {
    outcomes[i] = run_balance_cell(cells[i].parties, cells[i].horizon, seeds.derive(i));
  });

  std::printf("Protocol transport scale sweep (balance attack, law "
              "(ph,pH,pA)=(.40,.25,.35), Delta=0)\n\n");
  mh::TextTable table({"parties", "horizon", "blocks", "wall [s]", "slots/s", "divergence"});
  for (const CellOutcome& out : outcomes)
    table.add_row({std::to_string(out.parties), std::to_string(out.horizon),
                   std::to_string(out.blocks), mh::fixed(out.seconds, 3),
                   std::to_string(static_cast<std::size_t>(
                       static_cast<double>(out.horizon) / out.seconds)),
                   std::to_string(out.divergence)});
  std::printf("%s\n", table.render().c_str());
}

// range(0) = parties, range(1) = horizon. The (256, 10000) cell is the
// acceptance point of the rewrite (seed transport: ~20 min; now seconds);
// (16, 100000) is the deep-horizon regime.
void BM_ProtocolScale(benchmark::State& state) {
  const auto parties = static_cast<std::size_t>(state.range(0));
  const auto horizon = static_cast<std::size_t>(state.range(1));
  std::uint64_t seed = 1861;
  for (auto _ : state) {
    const CellOutcome out = run_balance_cell(parties, horizon, seed++);
    benchmark::DoNotOptimize(out.digest);
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(horizon));
}
BENCHMARK(BM_ProtocolScale)
    ->Args({64, 2000})
    ->Args({256, 10000})
    ->Args({16, 100000})
    ->Args({1024, 2500})
    ->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  mh::engine::print_thread_banner();
  const bool pins_ok = check_seed_pins();
  if (pins_ok) sweep_report();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return pins_ok ? 0 : 1;  // seed-pin drift fails the CI bench job
}
