// E14/E17 — the protocol transport at scale: deep-horizon executions with up
// to 1024 honest parties, a 10^5-party committee cell, and (behind
// MH_BENCH_DEEP=1) a 10^6-party smoke cell plus a 10^7-slot horizon cell —
// exercising the slot-bucketed chain-synced Network and the SoA
// lifted-ancestor BlockTree. Per-slot transport cost is proportional to the
// slot's NEW blocks, so wall-clock grows ~linearly in the horizon where the
// seed transport (full ancestor-chain rebroadcast + queue scans) grew
// quadratically — the "simulate long enough to see the linear-consistency
// regime" requirement.
//
// The report fans the (parties x horizon) sweep across engine::for_each_index
// (MH_THREADS) and prints blocks, wall-clock, and slots/s per cell. Before
// timing anything it verifies the two golden seed pins from
// protocol/transport_probe.hpp — digests of a fixed balance-attack execution
// and a fixed randomized-adversary execution (the latter covers Delta-delays,
// partial leaks, and orphan flushes). The wide cells (10^5 parties and the
// deep tier) carry their own pinned digests. Any transport or tree refactor
// that shifts delivery order, acceptance order, or the public view trips a
// pin and the process exits non-zero, failing the CI bench job.
//
// MH_BENCH_JSON=<path> archives every cell outcome (blocks, wall, digest,
// gate verdict) in the results block — the BENCH_protocol_scale.json
// trajectory CI keeps run over run.
#include <benchmark/benchmark.h>

#include "bench_harness.hpp"

#include <cstdio>
#include <string>
#include <vector>

#include "engine/seed_sequence.hpp"
#include "engine/thread_pool.hpp"
#include "protocol/blocktree.hpp"
#include "protocol/transport_probe.hpp"
#include "support/table.hpp"

namespace {

/// One sweep cell: seeded from SeedSequence(97).derive(derivation). A
/// non-zero pin is a golden digest gate — drift fails the process.
struct ScaleCell {
  std::size_t parties;
  std::size_t horizon;
  std::size_t derivation;
  std::uint64_t pin = 0;
};

// The quick sweep: every party-count axis value at horizons the seed
// transport could not reach interactively, plus the 10^5-party committee
// cell (~2 s on one core — cheap enough for the CI bench-smoke job, wide
// enough that index growth and arena recycling are on the hot path). The
// registered benchmarks carry the mid-size deep cells (horizon up to 1e5).
constexpr ScaleCell kSweepCells[] = {
    {16, 10000, 0},
    {64, 10000, 1},
    {256, 2500, 2},
    {1024, 1000, 3},
    {100000, 25, 4, 0xae56b39a9e692465ULL},
};

// The deep tier (MH_BENCH_DEEP=1): a 10^6-party smoke cell (~4 GB peak,
// ~15 s) and a 10^7-slot horizon cell (~23 GB peak, ~4 min, 1.25e7 blocks
// in every view) — the scale points E17 quotes. Run serially: two of these
// side by side would double the peak footprint for no timing benefit.
constexpr ScaleCell kDeepCells[] = {
    {1000000, 16, 5, 0x3a321fa47de34b4dULL},
    {16, 10000000, 6, 0xd6da7d1820c614b2ULL},
};

struct CellRecord {
  mh::TransportProbeOutcome outcome;
  std::uint64_t pin = 0;
  bool pin_ok = true;
};

std::vector<CellRecord> g_sweep_records;
std::vector<CellRecord> g_deep_records;
bool g_deep_enabled = false;

bool check_seed_pins() {
  const mh::TransportProbeOutcome balance = mh::balance_transport_probe(
      mh::kBalanceProbePinParties, mh::kBalanceProbePinHorizon, mh::kBalanceProbePinSeed);
  const mh::TransportProbeOutcome randomized = mh::randomized_transport_probe(
      mh::kRandomizedProbePinParties, mh::kRandomizedProbePinHorizon,
      mh::kRandomizedProbePinSeed, mh::kRandomizedProbePinDelta);
  const bool ok = balance.digest == mh::kBalanceProbePinDigest &&
                  randomized.digest == mh::kRandomizedProbePinDigest;
  std::printf("seed pins: balance 0x%016llx (want 0x%016llx), randomized 0x%016llx "
              "(want 0x%016llx) -> %s\n\n",
              static_cast<unsigned long long>(balance.digest),
              static_cast<unsigned long long>(mh::kBalanceProbePinDigest),
              static_cast<unsigned long long>(randomized.digest),
              static_cast<unsigned long long>(mh::kRandomizedProbePinDigest),
              ok ? "ok" : "DRIFT");
  return ok;
}

CellRecord run_cell(const ScaleCell& cell) {
  const mh::engine::SeedSequence seeds(97);
  CellRecord rec;
  rec.outcome =
      mh::balance_transport_probe(cell.parties, cell.horizon, seeds.derive(cell.derivation));
  rec.pin = cell.pin;
  rec.pin_ok = cell.pin == 0 || rec.outcome.digest == cell.pin;
  return rec;
}

bool print_cells(const char* title, const std::vector<CellRecord>& records) {
  std::printf("%s\n\n", title);
  bool ok = true;
  mh::TextTable table(
      {"parties", "horizon", "blocks", "wall [s]", "slots/s", "divergence", "digest gate"});
  for (const CellRecord& rec : records) {
    const mh::TransportProbeOutcome& out = rec.outcome;
    ok = ok && rec.pin_ok;
    table.add_row({std::to_string(out.parties), std::to_string(out.horizon),
                   std::to_string(out.blocks), mh::fixed(out.seconds, 3),
                   std::to_string(static_cast<std::size_t>(
                       static_cast<double>(out.horizon) / out.seconds)),
                   std::to_string(out.divergence),
                   rec.pin == 0 ? "-" : (rec.pin_ok ? "ok" : "DRIFT")});
  }
  std::printf("%s\n", table.render().c_str());
  return ok;
}

bool sweep_report() {
  constexpr std::size_t n = sizeof(kSweepCells) / sizeof(kSweepCells[0]);
  std::vector<CellRecord> records(n);
  mh::engine::for_each_index(n, mh::engine::threads_from_env(),
                             [&](std::size_t i) { records[i] = run_cell(kSweepCells[i]); });
  g_sweep_records = records;
  return print_cells(
      "Protocol transport scale sweep (balance attack, law "
      "(ph,pH,pA)=(.40,.25,.35), Delta=0)",
      records);
}

bool deep_report() {
  g_deep_enabled = mh::bench::env_flag("MH_BENCH_DEEP");
  if (!g_deep_enabled) {
    std::printf("deep tier: skipped (MH_BENCH_DEEP=1 runs the 10^6-party smoke cell "
                "and the 10^7-slot horizon cell)\n\n");
    return true;
  }
  // Serial on purpose (memory, not time, is the binding constraint); each
  // cell returns its arena storage before the next begins, and the trim
  // drops the ~GB of donated free-list buffers the next cell cannot reuse
  // at a different party count anyway.
  std::vector<CellRecord> records;
  for (const ScaleCell& cell : kDeepCells) {
    records.push_back(run_cell(cell));
    mh::BlockTree::arena_trim();
  }
  g_deep_records = records;
  return print_cells("Deep tier (MH_BENCH_DEEP=1): committee-scale smoke + deep horizon",
                     records);
}

mh::obs::Json cell_json(const CellRecord& rec) {
  char digest_hex[19];
  std::snprintf(digest_hex, sizeof(digest_hex), "0x%016llx",
                static_cast<unsigned long long>(rec.outcome.digest));
  mh::obs::Json cell = mh::obs::Json::object();
  cell.set("parties", rec.outcome.parties);
  cell.set("horizon", rec.outcome.horizon);
  cell.set("blocks", rec.outcome.blocks);
  cell.set("divergence", rec.outcome.divergence);
  cell.set("wall_s", rec.outcome.seconds);
  cell.set("slots_per_s", static_cast<double>(rec.outcome.horizon) / rec.outcome.seconds);
  cell.set("digest", digest_hex);
  cell.set("digest_gated", rec.pin != 0);
  cell.set("digest_ok", rec.pin_ok);
  return cell;
}

mh::obs::Json scale_results() {
  mh::obs::Json sweep = mh::obs::Json::array();
  for (const CellRecord& rec : g_sweep_records) sweep.push(cell_json(rec));
  mh::obs::Json deep = mh::obs::Json::array();
  for (const CellRecord& rec : g_deep_records) deep.push(cell_json(rec));
  mh::obs::Json results = mh::obs::Json::object();
  results.set("sweep", std::move(sweep));
  results.set("deep_enabled", g_deep_enabled);
  results.set("deep", std::move(deep));
  return results;
}

// range(0) = parties, range(1) = horizon. The (256, 10000) cell is the
// acceptance point of the transport rewrite (seed transport: ~20 min; now
// ~1.5 s after the SoA/lazy-lift tree); (16, 100000) is the deep-horizon
// regime the registered benchmarks can reach without the MH_BENCH_DEEP gate.
void BM_ProtocolScale(benchmark::State& state) {
  const auto parties = static_cast<std::size_t>(state.range(0));
  const auto horizon = static_cast<std::size_t>(state.range(1));
  std::uint64_t seed = 1861;
  for (auto _ : state) {
    const mh::TransportProbeOutcome out =
        mh::balance_transport_probe(parties, horizon, seed++);
    benchmark::DoNotOptimize(out.digest);
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(horizon));
}
BENCHMARK(BM_ProtocolScale)
    ->Args({64, 2000})
    ->Args({256, 10000})
    ->Args({16, 100000})
    ->Args({1024, 2500})
    ->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  mh::bench::MainOptions options;
  options.results = scale_results;
  return mh::bench::run_main(
      argc, argv, "protocol_scale",
      [] {
        const bool pins_ok = check_seed_pins();  // seed-pin drift fails the CI bench job
        if (!pins_ok) return false;
        const bool sweep_ok = sweep_report();
        const bool deep_ok = deep_report();
        return sweep_ok && deep_ok;
      },
      options);
}
