// E14 — the rewritten protocol transport at scale: deep-horizon executions
// with up to 1024 honest parties, exercising the slot-bucketed chain-synced
// Network and the lifted-ancestor BlockTree. Per-slot transport cost is
// proportional to the slot's NEW blocks, so wall-clock grows ~linearly in the
// horizon where the seed transport (full ancestor-chain rebroadcast + queue
// scans) grew quadratically — the "simulate long enough to see the
// linear-consistency regime" requirement.
//
// The report fans the (parties x horizon) sweep across engine::for_each_index
// (MH_THREADS) and prints blocks, wall-clock, and slots/s per cell. Before
// timing anything it verifies the two golden seed pins from
// protocol/transport_probe.hpp — digests of a fixed balance-attack execution
// and a fixed randomized-adversary execution (the latter covers Delta-delays,
// partial leaks, and orphan flushes). Any transport or tree refactor that
// shifts delivery order, acceptance order, or the public view trips the pins
// and the process exits non-zero, failing the CI bench job.
#include <benchmark/benchmark.h>

#include "bench_harness.hpp"

#include <cstdio>

#include "engine/seed_sequence.hpp"
#include "engine/thread_pool.hpp"
#include "protocol/transport_probe.hpp"
#include "support/table.hpp"

namespace {

bool check_seed_pins() {
  const mh::TransportProbeOutcome balance = mh::balance_transport_probe(
      mh::kBalanceProbePinParties, mh::kBalanceProbePinHorizon, mh::kBalanceProbePinSeed);
  const mh::TransportProbeOutcome randomized = mh::randomized_transport_probe(
      mh::kRandomizedProbePinParties, mh::kRandomizedProbePinHorizon,
      mh::kRandomizedProbePinSeed, mh::kRandomizedProbePinDelta);
  const bool ok = balance.digest == mh::kBalanceProbePinDigest &&
                  randomized.digest == mh::kRandomizedProbePinDigest;
  std::printf("seed pins: balance 0x%016llx (want 0x%016llx), randomized 0x%016llx "
              "(want 0x%016llx) -> %s\n\n",
              static_cast<unsigned long long>(balance.digest),
              static_cast<unsigned long long>(mh::kBalanceProbePinDigest),
              static_cast<unsigned long long>(randomized.digest),
              static_cast<unsigned long long>(mh::kRandomizedProbePinDigest),
              ok ? "ok" : "DRIFT");
  return ok;
}

void sweep_report() {
  // The quick sweep: every party-count axis value at horizons the seed
  // transport could not reach interactively; the registered benchmarks carry
  // the deep cells (horizon up to 1e5).
  struct ScaleCell {
    std::size_t parties;
    std::size_t horizon;
  };
  constexpr ScaleCell cells[] = {
      {16, 10000}, {64, 10000}, {256, 2500}, {1024, 1000},
  };
  constexpr std::size_t n = sizeof(cells) / sizeof(cells[0]);
  std::vector<mh::TransportProbeOutcome> outcomes(n);
  const mh::engine::SeedSequence seeds(97);
  mh::engine::for_each_index(n, mh::engine::threads_from_env(), [&](std::size_t i) {
    outcomes[i] =
        mh::balance_transport_probe(cells[i].parties, cells[i].horizon, seeds.derive(i));
  });

  std::printf("Protocol transport scale sweep (balance attack, law "
              "(ph,pH,pA)=(.40,.25,.35), Delta=0)\n\n");
  mh::TextTable table({"parties", "horizon", "blocks", "wall [s]", "slots/s", "divergence"});
  for (const mh::TransportProbeOutcome& out : outcomes)
    table.add_row({std::to_string(out.parties), std::to_string(out.horizon),
                   std::to_string(out.blocks), mh::fixed(out.seconds, 3),
                   std::to_string(static_cast<std::size_t>(
                       static_cast<double>(out.horizon) / out.seconds)),
                   std::to_string(out.divergence)});
  std::printf("%s\n", table.render().c_str());
}

// range(0) = parties, range(1) = horizon. The (256, 10000) cell is the
// acceptance point of the rewrite (seed transport: ~20 min; now seconds);
// (16, 100000) is the deep-horizon regime.
void BM_ProtocolScale(benchmark::State& state) {
  const auto parties = static_cast<std::size_t>(state.range(0));
  const auto horizon = static_cast<std::size_t>(state.range(1));
  std::uint64_t seed = 1861;
  for (auto _ : state) {
    const mh::TransportProbeOutcome out =
        mh::balance_transport_probe(parties, horizon, seed++);
    benchmark::DoNotOptimize(out.digest);
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(horizon));
}
BENCHMARK(BM_ProtocolScale)
    ->Args({64, 2000})
    ->Args({256, 10000})
    ->Args({16, 100000})
    ->Args({1024, 2500})
    ->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  return mh::bench::run_main(argc, argv, "protocol_scale", [] {
    const bool pins_ok = check_seed_pins();  // seed-pin drift fails the CI bench job
    if (pins_ok) sweep_report();
    return pins_ok;
  });
}
