// E13 — the differential consistency oracle at scale: the full
// {A0, A0'} x {Delta 0,1,2} x {3 strategies} x {2 laws} scenario matrix with
// large cells (hundreds of executions each, deeper horizons than the ctest
// cells), cross-validated run by run against the fork-theoretic analytics.
//
// The report prints one row per cell: simulated violation counts, the
// analytic allowance, the exact DP value with the Monte-Carlo
// Clopper-Pearson band, and the invariant counters - all of which must be
// zero. The registered benchmarks time the matrix itself (MH_THREADS fans
// the cells), producing BENCH_oracle.json in CI.
#include <benchmark/benchmark.h>

#include "bench_harness.hpp"

#include <chrono>
#include <cstdio>

#include "engine/seed_sequence.hpp"
#include "engine/thread_pool.hpp"
#include "oracle/scenario.hpp"
#include "support/table.hpp"

namespace {

mh::oracle::MatrixConfig large_matrix(std::size_t threads) {
  mh::oracle::MatrixConfig config;
  config.runs = 200;
  config.horizon = 160;
  config.target_slot = 4;
  config.k = 10;
  config.mc_samples = 20000;
  config.threads = threads;
  return config;
}

const char* tie_name(mh::TieBreak tie) {
  return tie == mh::TieBreak::AdversarialOrder ? "A0" : "A0'";
}

bool print_matrix_report() {
  const mh::oracle::MatrixConfig config = large_matrix(mh::engine::threads_from_env());
  const std::vector<mh::oracle::NamedLaw> laws = mh::oracle::default_matrix_laws();

  const auto start = std::chrono::steady_clock::now();
  const mh::oracle::MatrixResult result = run_scenario_matrix(config);
  const double ms =
      std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - start)
          .count();

  std::printf(
      "Differential consistency oracle: %zu cells x %zu executions\n"
      "(horizon %zu, target slot %zu, k = %zu; invariants must all be 0)\n\n",
      result.cells.size(), config.runs, config.horizon, config.target_slot, config.k);

  mh::TextTable table({"tie", "Delta", "strategy", "law", "viol", "allowed", "exact P(k)",
                       "MC band", "dom", "fork", "margin"});
  for (const auto& cell : result.cells) {
    std::vector<std::string> row;
    row.push_back(tie_name(cell.tie_break));
    row.push_back(std::to_string(cell.delta));
    row.push_back(mh::oracle::strategy_name(cell.strategy));
    row.push_back(laws[cell.law_index].name);
    row.push_back(std::to_string(cell.simulated_violations));
    row.push_back(std::to_string(cell.analytic_allowed));
    row.push_back(mh::paper_scientific(cell.exact_pk));
    row.push_back(cell.mc_checked
                      ? ("[" + mh::fixed(cell.recurrence_mc.lo, 4) + ", " +
                         mh::fixed(cell.recurrence_mc.hi, 4) + "]")
                      : std::string("(skipped)"));
    row.push_back(std::to_string(cell.domination_failures));
    row.push_back(std::to_string(cell.fork_invalid));
    row.push_back(std::to_string(cell.margin_breaches));
    table.add_row(std::move(row));
  }
  std::printf("%s\n", table.render().c_str());
  std::printf(
      "totals: %zu executions, %zu violations, %zu domination failures, "
      "%zu invalid forks, %zu margin breaches, all clean = %s  (%.0f ms)\n\n",
      result.total_runs(), result.total_violations(), result.total_domination_failures(),
      result.total_fork_invalid(), result.total_margin_breaches(),
      result.all_clean() ? "yes" : "NO", ms);
  return result.all_clean();
}

// A dirty matrix anywhere (report or timed iterations) must fail the process.
bool g_matrix_dirty = false;

// range(0) = executions per cell; MH_THREADS fans the 36 cells.
void BM_ScenarioMatrix(benchmark::State& state) {
  mh::oracle::MatrixConfig config = large_matrix(mh::engine::threads_from_env());
  config.runs = static_cast<std::size_t>(state.range(0));
  config.mc_samples = 2000;
  for (auto _ : state) {
    const mh::oracle::MatrixResult result = run_scenario_matrix(config);
    if (!result.all_clean()) {
      g_matrix_dirty = true;
      state.SkipWithError("oracle invariant violated");
    }
    benchmark::DoNotOptimize(result.total_violations());
  }
  state.counters["cells"] = static_cast<double>(36);
  state.counters["runs_per_cell"] = static_cast<double>(config.runs);
}
BENCHMARK(BM_ScenarioMatrix)->Arg(25)->Arg(100)->Unit(benchmark::kMillisecond);

// One cell end to end (execution + projection + fork checks), the oracle's
// unit of work.
void BM_OracleExecution(benchmark::State& state) {
  mh::oracle::RunConfig rc;
  rc.law = mh::oracle::default_matrix_laws()[0].law;
  rc.delta = static_cast<std::size_t>(state.range(0));
  rc.strategy = mh::oracle::Strategy::Randomized;
  rc.horizon = 160;
  rc.target_slot = 4;
  rc.k = 10;
  const mh::engine::SeedSequence streams(7);
  std::uint64_t i = 0;
  for (auto _ : state) {
    mh::Rng rng = streams.stream(i++);
    const mh::oracle::RunVerdict v = mh::oracle::check_execution(rc, rng);
    benchmark::DoNotOptimize(v.simulated_violation);
  }
}
BENCHMARK(BM_OracleExecution)->Arg(0)->Arg(2)->Unit(benchmark::kMicrosecond);

}  // namespace

int main(int argc, char** argv) {
  mh::bench::MainOptions options;
  // A dirty matrix anywhere (report or timed iterations) fails the CI bench job.
  options.post_run_clean = [] { return !g_matrix_dirty; };
  return mh::bench::run_main(argc, argv, "oracle", print_matrix_report, options);
}
