// E6 — Bound 2 / Theorem 2: with a consistent longest-chain tie-breaking rule
// (axiom A0'), consistency holds even when ph = 0; the certificate is a pair
// of consecutive Catalan slots, and its absence decays as e^{-Theta(eps^3 k)}.
// Compares the dominating GF tail against Monte-Carlo estimates on bivalent
// strings and reports the e^{-eps^3 k / 2}-flavored asymptotic rate.
#include <benchmark/benchmark.h>

#include "bench_harness.hpp"

#include <cstdio>
#include <vector>

#include "core/bounds.hpp"
#include "engine/thread_pool.hpp"
#include "genfunc/consecutive_gf.hpp"
#include "sim/monte_carlo.hpp"
#include "support/table.hpp"

namespace {

void bound2_report() {
  for (const double eps : {0.4, 0.3, 0.2}) {
    const mh::SymbolLaw law = mh::bernoulli_condition(eps, 0.0);  // ph = 0: all-H honest
    std::printf("Bound 2 at eps = %.2f (bivalent strings: ph = 0, pH = %.2f, pA = %.2f)\n",
                eps, law.pH, law.pA);
    std::printf("eps^3 / 2 = %.4e;  GF radius decay rate ln R = %.4e\n", eps * eps * eps / 2,
                static_cast<double>(mh::bound2_decay_rate(law)));

    const std::vector<std::size_t> ks{30, 60, 90, 150, 240};
    const mh::ConsecutiveCatalanGF gf(law, 4 * 240 + 64);
    mh::McOptions opt;
    opt.samples = 40'000;
    opt.seed = 2021;
    opt.threads = mh::engine::threads_from_env();

    mh::TextTable table({"k", "GF tail (bound)", "MC estimate [lo, hi]"});
    std::vector<double> xs, tails;
    for (std::size_t k : ks) {
      const mh::Proportion mc = mh::mc_no_consecutive_catalan(law, k, opt);
      const long double tail = gf.smoothed_tail(k);
      table.add_row({std::to_string(k), mh::paper_scientific(tail),
                     "[" + mh::paper_scientific(mc.lo) + ", " + mh::paper_scientific(mc.hi) +
                         "]"});
      xs.push_back(static_cast<double>(k));
      tails.push_back(static_cast<double>(tail));
    }
    std::printf("%s", table.render().c_str());
    std::printf("fitted GF decay rate: %.4e\n\n", mh::fitted_decay_rate(xs, tails));
  }
}

void BM_ConsecutiveGF(benchmark::State& state) {
  const auto order = static_cast<std::size_t>(state.range(0));
  const mh::SymbolLaw law = mh::bernoulli_condition(0.3, 0.0);
  for (auto _ : state) {
    const mh::ConsecutiveCatalanGF gf(law, order);
    benchmark::DoNotOptimize(gf.smoothed_tail(order / 4));
  }
}
BENCHMARK(BM_ConsecutiveGF)->Arg(256)->Arg(1024)->Arg(4096);

}  // namespace

int main(int argc, char** argv) {
  return mh::bench::run_main(argc, argv, "bound2",
                             [] { bound2_report(); return true; });
}
