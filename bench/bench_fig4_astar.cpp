// E4 — Figure 4: the optimal online adversary A*. Verifies Theorem 6
// (canonicity: the built fork attains rho(w) and every relative margin
// mu_x(y) simultaneously) on random strings across the parameter grid, then
// benchmarks the adversary's throughput as a function of the string length.
#include <benchmark/benchmark.h>

#include "bench_harness.hpp"

#include <cstdio>

#include "chars/bernoulli.hpp"
#include "core/astar.hpp"
#include "core/relative_margin.hpp"
#include "fork/margin.hpp"
#include "fork/reach.hpp"
#include "support/table.hpp"

namespace {

void canonicity_report() {
  std::printf("Figure 4 / Theorem 6: A* builds canonical forks\n");
  std::printf("(mu_x(F) must equal the Theorem-5 recurrence for EVERY prefix x)\n\n");
  mh::TextTable table({"eps", "ph", "n", "trials", "prefixes checked", "mismatches"});
  mh::Rng rng(8711);
  struct Case {
    double eps, ph;
    std::size_t n;
  };
  for (const Case c : {Case{0.3, 0.3, 64}, Case{0.1, 0.1, 96}, Case{0.5, 0.25, 64},
                       Case{0.2, 0.0, 80}, Case{0.05, 0.02, 128}}) {
    const mh::SymbolLaw law = mh::bernoulli_condition(c.eps, c.ph);
    const int trials = 25;
    std::size_t checked = 0, mismatches = 0;
    for (int trial = 0; trial < trials; ++trial) {
      const mh::CharString w = law.sample_string(c.n, rng);
      const mh::Fork fork = mh::build_canonical_fork(w);
      if (mh::max_reach(fork, w) != mh::rho_of(w)) ++mismatches;
      for (std::size_t x = 0; x <= w.size(); ++x) {
        ++checked;
        if (mh::relative_margin(fork, w, x) != mh::relative_margin_recurrence(w, x))
          ++mismatches;
      }
    }
    table.add_row({mh::fixed(c.eps, 2), mh::fixed(c.ph, 2), std::to_string(c.n),
                   std::to_string(trials), std::to_string(checked),
                   std::to_string(mismatches)});
  }
  std::printf("%s\n", table.render().c_str());
}

void BM_AStarBuild(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const mh::SymbolLaw law = mh::bernoulli_condition(0.3, 0.3);
  mh::Rng rng(42);
  const mh::CharString w = law.sample_string(n, rng);
  for (auto _ : state) {
    const mh::Fork fork = mh::build_canonical_fork(w);
    benchmark::DoNotOptimize(fork.vertex_count());
  }
  state.SetComplexityN(static_cast<std::int64_t>(n));
}
BENCHMARK(BM_AStarBuild)->Arg(64)->Arg(256)->Arg(1024)->Arg(4096)->Complexity();

void BM_MarginRecurrenceStream(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const mh::SymbolLaw law = mh::bernoulli_condition(0.3, 0.3);
  mh::Rng rng(43);
  const mh::CharString w = law.sample_string(n, rng);
  for (auto _ : state)
    benchmark::DoNotOptimize(mh::relative_margin_recurrence(w, n / 2));
}
BENCHMARK(BM_MarginRecurrenceStream)->Arg(1024)->Arg(65536);

}  // namespace

int main(int argc, char** argv) {
  return mh::bench::run_main(argc, argv, "fig4_astar",
                             [] { canonicity_report(); return true; },
                             {.thread_banner = false});
}
