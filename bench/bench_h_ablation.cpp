// E12 — ablation on the treatment of multiply honest (H) slots. The three
// analyses differ only in how they count an H slot:
//   penalty  (Praos)     : H feeds the adversary   -> threshold ph - pH > pA
//   neutral  (SnowWhite)  : H is ignored            -> threshold ph > pA
//   credit   (this paper) : H counts as honest      -> threshold ph + pH > pA
// This bench makes the ablation concrete: it re-runs the *exact* settlement
// DP under each H-treatment (rewriting H to A, dropping H, keeping H) and
// reports the certified error and the implied maximal tolerable pA.
#include <benchmark/benchmark.h>

#include "bench_harness.hpp"

#include <cstdio>

#include "core/exact_dp.hpp"
#include "support/table.hpp"

namespace {

mh::SymbolLaw penalty_treatment(const mh::SymbolLaw& law) {
  return mh::SymbolLaw{law.ph, 0.0, law.pA + law.pH};  // H -> A
}

mh::SymbolLaw neutral_treatment(const mh::SymbolLaw& law) {
  // H slots vanish; remaining slots keep relative weights (time rescales).
  const double mass = law.ph + law.pA;
  return mh::SymbolLaw{law.ph / mass, 0.0, law.pA / mass};
}

void ablation_table() {
  const double pA = 0.3;
  const std::size_t k = 150;
  std::printf("H-slot treatment ablation at pA = %.2f, k = %zu\n", pA, k);
  std::printf("(honest mass 0.7 split between ph and pH)\n\n");
  mh::TextTable table({"ph", "pH", "credit (exact)", "neutral (H dropped)",
                       "penalty (H->A)"});
  for (const double pH : {0.0, 0.15, 0.30, 0.38, 0.50, 0.65}) {
    const mh::SymbolLaw law{0.7 - pH, pH, pA};
    const long double credit = mh::settlement_violation_probability(law, k);

    const mh::SymbolLaw neutral = neutral_treatment(law);
    // The neutral analysis only sees the h/A subsequence: k slots of w contain
    // about (ph+pA) k decisive ones.
    const auto k_eff = static_cast<std::size_t>(
        static_cast<double>(k) * (law.ph + law.pA));
    const long double neutral_err =
        neutral.ph > neutral.pA && k_eff > 0
            ? mh::settlement_violation_probability(neutral, k_eff)
            : 1.0L;

    const mh::SymbolLaw penalty = penalty_treatment(law);
    const long double penalty_err = penalty.pA < 0.5
                                        ? mh::settlement_violation_probability(penalty, k)
                                        : 1.0L;

    table.add_row({mh::fixed(law.ph, 2), mh::fixed(law.pH, 2), mh::paper_scientific(credit),
                   mh::paper_scientific(neutral_err), mh::paper_scientific(penalty_err)});
  }
  std::printf("%s\n", table.render().c_str());
  std::printf(
      "reading: the credit column barely moves as honest mass shifts into\n"
      "concurrency; the neutral column decays once ph < pA; the penalty column\n"
      "saturates at 1 as soon as ph - pH <= pA (pH >= 0.2 here... pH > 0.4/2).\n\n");
}

void max_tolerable_adversary() {
  // For each treatment, the largest pA (in 0.005 steps) whose certified error
  // at k = 200 stays below 1e-6, with honest mass split ph = pH.
  std::printf("maximal tolerable pA for certified error < 1e-6 at k = 200 (ph = pH):\n\n");
  mh::TextTable table({"treatment", "max pA"});
  const auto certify = [](const mh::SymbolLaw& law, int mode) -> long double {
    switch (mode) {
      case 0: return mh::settlement_violation_probability(law, 200);
      case 1: {
        const mh::SymbolLaw n = neutral_treatment(law);
        const auto k_eff =
            static_cast<std::size_t>(200.0 * (law.ph + law.pA));
        return n.ph > n.pA && k_eff > 0 ? mh::settlement_violation_probability(n, k_eff)
                                        : 1.0L;
      }
      default: {
        const mh::SymbolLaw p = penalty_treatment(law);
        return p.pA < 0.5 ? mh::settlement_violation_probability(p, 200) : 1.0L;
      }
    }
  };
  const char* names[] = {"credit (this work)", "neutral (SnowWhite-like)",
                         "penalty (Praos-like)"};
  for (int mode = 0; mode < 3; ++mode) {
    double best = 0.0;
    for (double pA = 0.005; pA < 0.5; pA += 0.005) {
      const double honest = (1.0 - pA) / 2.0;
      const mh::SymbolLaw law{honest, honest, pA};
      if (certify(law, mode) < 1e-6L) best = pA;
    }
    table.add_row({names[mode], mh::fixed(best, 3)});
  }
  std::printf("%s\n", table.render().c_str());
}

void BM_AblationCell(benchmark::State& state) {
  const mh::SymbolLaw law{0.35, 0.35, 0.3};
  for (auto _ : state)
    benchmark::DoNotOptimize(mh::settlement_violation_probability(law, 100));
}
BENCHMARK(BM_AblationCell);

}  // namespace

int main(int argc, char** argv) {
  return mh::bench::run_main(argc, argv, "h_ablation",
                             [] { ablation_table(); max_tolerable_adversary(); return true; },
                             {.thread_banner = false});
}
