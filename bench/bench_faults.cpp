// E16 — the deterministic fault-injection layer under the observed-Delta
// oracle: the chaos band (every fault profile x tie x Delta x strategy x law)
// runs with per-execution sampled FaultPlans and every run is graded — within
// the configured Delta the full domination invariant set must hold, beyond it
// the run must degrade gracefully at its observed Delta ('d'/'u', never '!').
//
// On any oracle violation the report dumps a minimal reproducer — matrix
// seed, cell index, run index, and the serialized FaultPlan — and the process
// exits non-zero (the CI chaos job's gate).
//
// The report also runs the zero-overhead gate: the E14 acceptance cell
// (256 parties x 10^4 slots, balance attack) with an attached empty-plan
// injector must produce the exact bare-probe digest and stay within 2%
// median wall-clock. Env knobs: MH_FAULTS_QUICK shrinks both the band and
// the overhead cell for smoke runs; MH_FAULTS_OVERHEAD_REPS sets the timing
// repetitions (0 skips the gate — sanitizer builds time nothing useful).
#include <benchmark/benchmark.h>

#include "bench_harness.hpp"

#include <chrono>
#include <vector>
#include <cstdio>
#include <cstdlib>

#include "engine/seed_sequence.hpp"
#include "engine/thread_pool.hpp"
#include "oracle/scenario.hpp"
#include "protocol/transport_probe.hpp"
#include "support/table.hpp"

namespace {

mh::oracle::MatrixConfig band_config() {
  mh::oracle::MatrixConfig config = mh::oracle::fault_band_config();
  config.threads = mh::engine::threads_from_env();
  if (mh::bench::env_flag("MH_FAULTS_QUICK")) {
    config.runs = 4;
    config.mc_samples = 500;
  }
  return config;
}

const char* tie_name(mh::TieBreak tie) {
  return tie == mh::TieBreak::AdversarialOrder ? "A0" : "A0'";
}

// Report outcomes shared with post_run_clean and the JSON results block.
struct E16Outcome {
  bool band_clean = false;
  std::size_t degraded = 0;
  std::size_t recovery_failures = 0;
  std::size_t resync_blocks = 0;
  std::size_t faults_injected = 0;
  bool overhead_ran = false;
  bool digests_match = true;
  double overhead_ratio = 0.0;
};
E16Outcome g_outcome;
bool g_band_dirty = false;  // set by the timed iterations too

bool chaos_band_report() {
  const mh::oracle::MatrixConfig config = band_config();
  const std::vector<mh::oracle::NamedLaw> laws = mh::oracle::default_matrix_laws();

  const auto start = std::chrono::steady_clock::now();
  const mh::oracle::MatrixResult result = run_scenario_matrix(config);
  const double ms =
      std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - start)
          .count();

  std::printf(
      "Chaos band: %zu cells x %zu faulted executions (matrix seed %llu)\n"
      "(within-bound runs must satisfy all domination invariants; out-of-bound\n"
      " runs are flagged degraded and graded at their observed Delta)\n\n",
      result.cells.size(), config.runs, static_cast<unsigned long long>(config.seed));

  mh::TextTable table({"profile", "tie", "Delta", "strategy", "law", "viol", "deg", "unb",
                       "recov-fail", "maxObsD", "resync", "injected"});
  for (const auto& cell : result.cells)
    table.add_row({mh::faults::fault_profile_name(cell.fault_profile), tie_name(cell.tie_break),
                   std::to_string(cell.delta), mh::oracle::strategy_name(cell.strategy),
                   laws[cell.law_index].name, std::to_string(cell.simulated_violations),
                   std::to_string(cell.degraded_runs), std::to_string(cell.degraded_unchecked),
                   std::to_string(cell.recovery_failures),
                   std::to_string(cell.max_observed_delta), std::to_string(cell.resync_blocks),
                   std::to_string(cell.faults_injected)});
  std::printf("%s\n", table.render().c_str());
  std::printf(
      "totals: %zu runs, %zu degraded, %zu recovery failures, %zu re-synced blocks, "
      "all clean = %s  (%.0f ms)\n\n",
      result.total_runs(), result.total_degraded(), result.total_recovery_failures(),
      result.total_resync_blocks(), result.all_clean() ? "yes" : "NO", ms);

  // The minimal reproducer: (matrix seed, cell index, run index, plan)
  // pins the exact execution — rebuild the cell's RunConfig from its echoed
  // axes, draw stream `run` of SeedSequence(derive(cell)), deserialize the
  // plan, and call check_execution.
  for (std::size_t i = 0; i < result.cells.size(); ++i) {
    const auto& cell = result.cells[i];
    if (cell.clean()) continue;
    std::printf("ORACLE VIOLATION in cell %zu (%s %s Delta=%zu %s %s):\n", i,
                mh::faults::fault_profile_name(cell.fault_profile), tie_name(cell.tie_break),
                cell.delta, mh::oracle::strategy_name(cell.strategy),
                laws[cell.law_index].name);
    std::printf("  matrix seed : %llu\n", static_cast<unsigned long long>(config.seed));
    std::printf("  cell index  : %zu\n", i);
    if (cell.first_failure_run != SIZE_MAX) {
      std::printf("  run index   : %zu\n", cell.first_failure_run);
      std::printf("  fault plan  : %s\n", cell.first_failure_plan.c_str());
    } else {
      std::printf("  (stochastic cross-check breach: mc_within_band=%d ceiling=%d)\n",
                  cell.mc_within_band ? 1 : 0, cell.protocol_within_ceiling ? 1 : 0);
    }
  }

  g_outcome.band_clean = result.all_clean();
  g_outcome.degraded = result.total_degraded();
  g_outcome.recovery_failures = result.total_recovery_failures();
  g_outcome.resync_blocks = result.total_resync_blocks();
  for (const auto& cell : result.cells) g_outcome.faults_injected += cell.faults_injected;
  return result.all_clean();
}

bool overhead_gate_report() {
  const std::size_t reps = mh::env::size("MH_FAULTS_OVERHEAD_REPS", 3, 1);
  if (reps == 0) {
    std::printf("overhead gate: skipped (MH_FAULTS_OVERHEAD_REPS=0)\n\n");
    return true;
  }
  const bool quick = mh::bench::env_flag("MH_FAULTS_QUICK");
  const std::size_t parties = quick ? 64 : 256;
  const std::size_t horizon = quick ? 2000 : 10000;
  const std::uint64_t seed = 8161;
  const mh::faults::FaultPlan empty;

  // Digest equality first: an attached empty-plan injector must not perturb a
  // single delivery, acceptance, or adopted head.
  const mh::TransportProbeOutcome bare = mh::balance_transport_probe(parties, horizon, seed);
  const mh::TransportProbeOutcome faulted =
      mh::faulted_balance_transport_probe(parties, horizon, seed, empty);
  const bool digests_match = bare.digest == faulted.digest;

  // Interleaved A/B pairs, not two sequential blocks: the cell runs for
  // seconds and machine drift (frequency decay, co-tenants) between blocks
  // dwarfs the effect being measured. Pairing puts both variants under the
  // same drift; the medians then compare like with like.
  const auto time_one = [](auto&& fn) {
    const std::uint64_t begin = mh::obs::now_ns();
    fn();
    return static_cast<double>(mh::obs::now_ns() - begin);
  };
  const auto run_bare = [&] {
    benchmark::DoNotOptimize(mh::balance_transport_probe(parties, horizon, seed));
  };
  const auto run_faulted = [&] {
    benchmark::DoNotOptimize(mh::faulted_balance_transport_probe(parties, horizon, seed, empty));
  };
  run_bare();  // shared warmup (allocator + cache state)
  std::vector<double> bare_samples, faulted_samples;
  for (std::size_t i = 0; i < reps; ++i) {
    bare_samples.push_back(time_one(run_bare));
    faulted_samples.push_back(time_one(run_faulted));
  }
  const double bare_ns = mh::bench::median(std::move(bare_samples));
  const double faulted_ns = mh::bench::median(std::move(faulted_samples));
  const double ratio = faulted_ns / bare_ns;

  std::printf("overhead gate (%zu parties x %zu slots, empty FaultPlan, median of %zu):\n",
              parties, horizon, reps);
  std::printf("  digests     : 0x%016llx vs 0x%016llx -> %s\n",
              static_cast<unsigned long long>(bare.digest),
              static_cast<unsigned long long>(faulted.digest),
              digests_match ? "identical" : "DRIFT");
  std::printf("  wall-clock  : %.1f ms bare, %.1f ms faulted -> ratio %.4f (gate <= 1.02)\n\n",
              bare_ns / 1e6, faulted_ns / 1e6, ratio);

  g_outcome.overhead_ran = true;
  g_outcome.digests_match = digests_match;
  g_outcome.overhead_ratio = ratio;
  return digests_match && ratio <= 1.02;
}

// range(0) = executions per cell; MH_THREADS fans the 96 cells.
void BM_FaultBandMatrix(benchmark::State& state) {
  mh::oracle::MatrixConfig config = band_config();
  config.runs = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    const mh::oracle::MatrixResult result = run_scenario_matrix(config);
    if (!result.all_clean()) {
      g_band_dirty = true;
      state.SkipWithError("fault-band oracle invariant violated");
    }
    benchmark::DoNotOptimize(result.total_degraded());
  }
  state.counters["cells"] = static_cast<double>(96);
  state.counters["runs_per_cell"] = static_cast<double>(config.runs);
}
BENCHMARK(BM_FaultBandMatrix)->Arg(6)->Arg(24)->Unit(benchmark::kMillisecond);

// One faulted oracle execution end to end, per profile: the fault band's unit
// of work (plan sampling + perturbed run + observed-Delta audit + projection).
void BM_FaultedExecution(benchmark::State& state) {
  const auto profile = static_cast<mh::faults::FaultProfile>(state.range(0));
  mh::oracle::RunConfig rc;
  rc.law = mh::oracle::default_matrix_laws()[0].law;
  rc.tie_break = mh::TieBreak::AdversarialOrder;
  rc.strategy = mh::oracle::Strategy::Randomized;
  rc.delta = 2;
  rc.horizon = 160;
  rc.target_slot = 4;
  rc.k = 10;
  const mh::engine::SeedSequence streams(16);
  std::uint64_t i = 0;
  for (auto _ : state) {
    mh::Rng plan_rng = streams.stream(1'000'000 + i);
    const mh::faults::FaultPlan plan = mh::faults::sample_fault_plan(
        profile, rc.honest_parties, rc.horizon, rc.delta, plan_rng);
    mh::Rng rng = streams.stream(i++);
    const mh::oracle::RunVerdict v = mh::oracle::check_execution(rc, rng, &plan);
    if (v.code() == '!') {
      g_band_dirty = true;
      state.SkipWithError("faulted execution broke an invariant");
    }
    benchmark::DoNotOptimize(v.degraded);
  }
  state.SetLabel(mh::faults::fault_profile_name(profile));
}
BENCHMARK(BM_FaultedExecution)
    ->Arg(static_cast<int>(mh::faults::FaultProfile::None))
    ->Arg(static_cast<int>(mh::faults::FaultProfile::PartitionHeal))
    ->Arg(static_cast<int>(mh::faults::FaultProfile::Churn))
    ->Arg(static_cast<int>(mh::faults::FaultProfile::Mixed))
    ->Unit(benchmark::kMicrosecond);

}  // namespace

int main(int argc, char** argv) {
  mh::bench::MainOptions options;
  options.post_run_clean = [] { return !g_band_dirty; };
  options.results = [] {
    mh::obs::Json results = mh::obs::Json::object();
    results.set("band_clean", g_outcome.band_clean);
    results.set("degraded_runs", static_cast<std::uint64_t>(g_outcome.degraded));
    results.set("recovery_failures",
                static_cast<std::uint64_t>(g_outcome.recovery_failures));
    results.set("resync_blocks", static_cast<std::uint64_t>(g_outcome.resync_blocks));
    results.set("faults_injected", static_cast<std::uint64_t>(g_outcome.faults_injected));
    results.set("overhead_ran", g_outcome.overhead_ran);
    results.set("overhead_digests_match", g_outcome.digests_match);
    results.set("overhead_ratio", g_outcome.overhead_ratio);
    return results;
  };
  return mh::bench::run_main(argc, argv, "faults", [] {
    const bool band_ok = chaos_band_report();
    const bool overhead_ok = overhead_gate_report();
    return band_ok && overhead_ok;
  }, options);
}
