// E15 — the observability overhead gate: proves the metrics + tracing layer
// costs < 2% wall-clock on the E14 transport acceptance cell, and that
// enabling it changes no result bit.
//
// The probe cell (default 256 parties x 10^4 slots, the E14 acceptance
// point) runs alternately with metric recording off and on, same seed every
// time; medians over MH_OBS_BENCH_REPS repetitions (default 3, CI uses 5)
// absorb scheduler noise. Two hard gates, each failing the process:
//
//   * every run — on or off — must produce the golden digest of the cell
//     (instrumentation perturbing results is a correctness bug, not a perf
//     bug);
//   * with hooks compiled in (-DMH_OBS=ON), median overhead must stay below
//     MH_OBS_MAX_OVERHEAD_PCT (default 2.0).
//
// Without MH_OBS the hooks are gone and the comparison degenerates to
// noise-vs-noise; the report says so and only the digest gate applies.
// MH_BENCH_JSON=BENCH_obs.json archives the unified artifact (timings in the
// results block, the enabled runs' metrics in the metrics block).
#include <benchmark/benchmark.h>

#include "bench_harness.hpp"

#include <cstdio>
#include <cstdlib>

#include "protocol/transport_probe.hpp"

namespace {

struct OverheadOutcome {
  double off_ms = 0.0;  ///< median sim wall-clock, recording off
  double on_ms = 0.0;   ///< median sim wall-clock, recording on
  double overhead_pct = 0.0;
  std::size_t parties = 0;
  std::size_t horizon = 0;
  std::size_t reps = 0;
  bool digests_match = false;
  bool gated = false;  ///< the <2% gate applied (hooks compiled in)
  bool ok = false;
};

OverheadOutcome g_outcome;

bool overhead_report() {
  const std::size_t parties = mh::env::size("MH_OBS_BENCH_PARTIES", 256, 1);
  const std::size_t horizon = mh::env::size("MH_OBS_BENCH_HORIZON", 10000, 1);
  const std::size_t reps = mh::env::size("MH_OBS_BENCH_REPS", 3, 1);
  const double max_overhead_pct = mh::env::positive_number("MH_OBS_MAX_OVERHEAD_PCT", 2.0);
  constexpr std::uint64_t kSeed = 20240914;

  // The harness may have force-enabled recording for --list-metrics; restore
  // whatever state we entered with after the off runs.
  const bool was_enabled = mh::obs::enabled();

  std::printf("obs overhead gate: %zu parties x %zu slots, median of %zu "
              "(MH_OBS_BENCH_{PARTIES,HORIZON,REPS})\n",
              parties, horizon, reps);

  std::uint64_t expect_digest = 0;
  bool digests_match = true;
  const auto probe = [&](bool enabled) {
    mh::obs::set_enabled(enabled);
    const mh::TransportProbeOutcome out =
        mh::balance_transport_probe(parties, horizon, kSeed);
    if (expect_digest == 0) expect_digest = out.digest;
    if (out.digest != expect_digest) digests_match = false;
    return out.seconds * 1e3;
  };

  // One warmup pair, then alternating off/on so drift (thermal, page cache)
  // hits both sides equally.
  probe(false);
  probe(true);
  std::vector<double> off_ms, on_ms;
  for (std::size_t r = 0; r < reps; ++r) {
    off_ms.push_back(probe(false));
    on_ms.push_back(probe(true));
  }
  mh::obs::set_enabled(was_enabled);

  OverheadOutcome& o = g_outcome;
  o.parties = parties;
  o.horizon = horizon;
  o.reps = reps;
  o.off_ms = mh::bench::median(off_ms);
  o.on_ms = mh::bench::median(on_ms);
  o.overhead_pct = 100.0 * (o.on_ms - o.off_ms) / o.off_ms;
  o.digests_match = digests_match;
  o.gated = mh::obs::compiled();
  o.ok = digests_match && (!o.gated || o.overhead_pct <= max_overhead_pct);

  std::printf("  metrics off: %.1f ms   metrics on: %.1f ms   overhead: %+.2f%%\n",
              o.off_ms, o.on_ms, o.overhead_pct);
  std::printf("  digests (on == off == 0x%016llx): %s\n",
              static_cast<unsigned long long>(expect_digest),
              digests_match ? "match" : "MISMATCH");
  if (o.gated)
    std::printf("  gate: overhead <= %.1f%% -> %s\n\n", max_overhead_pct,
                o.ok ? "pass" : "FAIL");
  else
    std::printf("  gate: skipped (hooks not compiled in; configure with -DMH_OBS=ON)\n\n");
  return o.ok;
}

mh::obs::Json overhead_results() {
  mh::obs::Json results = mh::obs::Json::object();
  results.set("parties", g_outcome.parties);
  results.set("horizon", g_outcome.horizon);
  results.set("reps", g_outcome.reps);
  results.set("off_ms", g_outcome.off_ms);
  results.set("on_ms", g_outcome.on_ms);
  results.set("overhead_pct", g_outcome.overhead_pct);
  results.set("digests_match", g_outcome.digests_match);
  results.set("gated", g_outcome.gated);
  return results;
}

}  // namespace

int main(int argc, char** argv) {
  mh::bench::MainOptions options;
  options.results = overhead_results;
  return mh::bench::run_main(argc, argv, "obs", overhead_report, options);
}
