// E3 — Figures 2 and 3: balanced and x-balanced forks, plus the Fact-6 sweep
// that ties settlement violations to balanced-fork existence:
//
//     an x-balanced fork for xy exists   <=>   mu_x(y) >= 0.
//
// The sweep measures, per string length, how often random strings admit a
// balanced fork and verifies the constructive extension on every positive
// margin (who wins: the adversary exactly when the recurrence is >= 0).
#include <benchmark/benchmark.h>

#include "bench_harness.hpp"

#include <cstdio>

#include "chars/bernoulli.hpp"
#include "core/astar.hpp"
#include "core/relative_margin.hpp"
#include "fork/ascii.hpp"
#include "fork/balanced.hpp"
#include "support/table.hpp"

namespace {

void print_figures() {
  {
    mh::Fork fork;
    const auto h1 = fork.add_vertex(mh::kRoot, 1);
    const auto h3 = fork.add_vertex(h1, 3);
    fork.add_vertex(h3, 5);
    const auto a2 = fork.add_vertex(mh::kRoot, 2);
    const auto a4 = fork.add_vertex(a2, 4);
    fork.add_vertex(a4, 6);
    const mh::CharString w = mh::CharString::parse("hAhAhA");
    std::printf("Figure 2: a balanced fork for w = hAhAhA\n\n%s\nbalanced: %s\n\n",
                mh::render_ascii(fork, w).c_str(),
                mh::is_balanced(fork, w) ? "yes" : "no");
  }
  {
    mh::Fork fork;
    const auto h1 = fork.add_vertex(mh::kRoot, 1);
    const auto h2 = fork.add_vertex(h1, 2);
    const auto h3 = fork.add_vertex(h2, 3);
    fork.add_vertex(h3, 5);
    const auto a4 = fork.add_vertex(h2, 4);
    fork.add_vertex(a4, 6);
    const mh::CharString w = mh::CharString::parse("hhhAhA");
    std::printf("Figure 3: an x-balanced fork for w = hhhAhA, x = hh\n\n%s\n",
                mh::render_ascii(fork, w).c_str());
    std::printf("x-balanced (x = hh): %s;  balanced over the whole string: %s\n\n",
                mh::is_x_balanced(fork, w, 2) ? "yes" : "no",
                mh::is_balanced(fork, w) ? "yes" : "no");
  }
}

void fact6_sweep() {
  std::printf("Fact 6 sweep: balanced-fork existence vs sign of mu_x(y)\n");
  std::printf("(random strings, eps = 0.3, ph = 0.3; x_len = n/2)\n\n");
  mh::TextTable table({"n", "trials", "mu>=0 (freq)", "constructive agreement"});
  const mh::SymbolLaw law = mh::bernoulli_condition(0.3, 0.3);
  mh::Rng rng(20200730);
  for (std::size_t n : {8u, 16u, 24u, 32u, 48u}) {
    const int trials = 400;
    int balanced_count = 0;
    int agreement = 0;
    for (int trial = 0; trial < trials; ++trial) {
      const mh::CharString w = law.sample_string(n, rng);
      const std::size_t x_len = n / 2;
      const bool margin_ok = mh::relative_margin_recurrence(w, x_len) >= 0;
      const mh::Fork fork = mh::build_canonical_fork(w);
      const auto extended = mh::extend_to_x_balanced(fork, w, x_len);
      if (margin_ok) ++balanced_count;
      if (extended.has_value() == margin_ok) ++agreement;
    }
    table.add_row({std::to_string(n), std::to_string(trials),
                   mh::fixed(static_cast<double>(balanced_count) / trials, 3),
                   std::to_string(agreement) + "/" + std::to_string(trials)});
  }
  std::printf("%s\n", table.render().c_str());
}

void BM_BalancedExtension(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  mh::Rng rng(7);
  const mh::SymbolLaw law = mh::bernoulli_condition(0.3, 0.3);
  const mh::CharString w = law.sample_string(n, rng);
  const mh::Fork fork = mh::build_canonical_fork(w);
  for (auto _ : state) {
    auto result = mh::extend_to_x_balanced(fork, w, n / 2);
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_BalancedExtension)->Arg(32)->Arg(128)->Arg(512);

}  // namespace

int main(int argc, char** argv) {
  return mh::bench::run_main(argc, argv, "fig23_balanced",
                             [] { print_figures(); fact6_sweep(); return true; },
                             {.thread_banner = false});
}
