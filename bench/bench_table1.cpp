// E1 — Table 1: exact probabilities of k-settlement violations where the
// symbols are i.i.d. with Pr[A] = alpha and Pr[h] = ratio * (1 - alpha).
// Regenerates every cell of the paper's Table 1 (alpha columns, ratio blocks,
// k rows) with the Section-6.6 dynamic program seeded by X_inf (|x| -> inf).
//
// All 36 (alpha, ratio) laws run as ONE engine-parallel sweep
// (mh::sweep_settlement_series) on the banded DP kernel; the printed table
// uses the long double Reference path, so the digits are bit-identical to
// the serial seed implementation for every MH_THREADS setting.
//
// Expected correspondence: identical digits for k <= 400; the paper's k = 500
// row deviates from its own geometric trend (see EXPERIMENTS.md).
#include <benchmark/benchmark.h>

#include "bench_harness.hpp"

#include <chrono>
#include <cstdio>

#include "analysis/sweep.hpp"
#include "chars/bernoulli.hpp"
#include "core/exact_dp.hpp"
#include "engine/thread_pool.hpp"
#include "support/table.hpp"

namespace {

constexpr double kAlphas[] = {0.01, 0.10, 0.20, 0.30, 0.40, 0.49};
constexpr double kRatios[] = {1.0, 0.9, 0.8, 0.5, 0.25, 0.01};
constexpr std::size_t kDepths[] = {100, 200, 300, 400, 500};
constexpr std::size_t kMax = 500;

std::vector<mh::SymbolLaw> table1_laws() {
  std::vector<mh::SymbolLaw> laws;
  laws.reserve(std::size(kRatios) * std::size(kAlphas));
  for (double ratio : kRatios)
    for (double alpha : kAlphas) laws.push_back(mh::table1_law(alpha, ratio));
  return laws;
}

void print_table1() {
  std::printf(
      "Table 1: exact probabilities of k-settlement violations\n"
      "(i.i.d. symbols, Pr[A] = alpha, Pr[h] = ratio * (1 - alpha), |x| -> infinity)\n\n");

  // One sweep over all 36 laws; each cell is one DP pass yielding its full
  // k-series.
  mh::SweepOptions opt;
  opt.threads = mh::engine::threads_from_env();
  const auto start = std::chrono::steady_clock::now();
  const std::vector<mh::SettlementSeries> series = sweep_settlement_series(table1_laws(), kMax, opt);
  const double ms =
      std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - start).count();

  for (std::size_t b = 0; b < std::size(kRatios); ++b) {
    std::printf("Pr[h]/(1-alpha) = %.2f\n", kRatios[b]);
    std::vector<std::string> header{"k \\ alpha"};
    for (double alpha : kAlphas) header.push_back(mh::fixed(alpha, 2));
    mh::TextTable table(header);
    for (std::size_t k : kDepths) {
      std::vector<std::string> row{std::to_string(k)};
      for (std::size_t a = 0; a < std::size(kAlphas); ++a)
        row.push_back(mh::paper_scientific(series[b * std::size(kAlphas) + a].violation[k]));
      table.add_row(std::move(row));
    }
    std::printf("%s\n", table.render().c_str());
  }
  std::printf("sweep: %zu laws x k<=%zu in %.0f ms\n\n", std::size(kRatios) * std::size(kAlphas),
              kMax, ms);
}

// range(0) = k, range(1) = DpPrecision (0 = Reference long double path,
// 1 = Fast double path).
void BM_ExactSettlementSeries(benchmark::State& state) {
  const auto k = static_cast<std::size_t>(state.range(0));
  const auto precision =
      state.range(1) == 0 ? mh::DpPrecision::Reference : mh::DpPrecision::Fast;
  const mh::SymbolLaw law = mh::table1_law(0.30, 0.5);
  for (auto _ : state) {
    const mh::SettlementSeries series =
        mh::exact_settlement_series(law, k, mh::InitialReach::Stationary, precision);
    benchmark::DoNotOptimize(series.violation.back());
  }
}
BENCHMARK(BM_ExactSettlementSeries)->ArgsProduct({{50, 100, 200, 400}, {0, 1}});

// The full Table-1 grid as one engine-parallel sweep (MH_THREADS controls the
// fan-out; results are thread-count invariant).
void BM_Table1Sweep(benchmark::State& state) {
  const auto k = static_cast<std::size_t>(state.range(0));
  const std::vector<mh::SymbolLaw> laws = table1_laws();
  mh::SweepOptions opt;
  opt.threads = mh::engine::threads_from_env();
  opt.precision = state.range(1) == 0 ? mh::DpPrecision::Reference : mh::DpPrecision::Fast;
  for (auto _ : state) {
    const auto series = sweep_settlement_series(laws, k, opt);
    benchmark::DoNotOptimize(series.front().violation.back());
  }
}
BENCHMARK(BM_Table1Sweep)->ArgsProduct({{200, 500}, {0, 1}})->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  return mh::bench::run_main(argc, argv, "table1",
                             [] { print_table1(); return true; });
}
