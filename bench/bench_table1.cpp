// E1 — Table 1: exact probabilities of k-settlement violations where the
// symbols are i.i.d. with Pr[A] = alpha and Pr[h] = ratio * (1 - alpha).
// Regenerates every cell of the paper's Table 1 (alpha columns, ratio blocks,
// k rows) with the Section-6.6 dynamic program seeded by X_inf (|x| -> inf).
//
// Expected correspondence: identical digits for k <= 400; the paper's k = 500
// row deviates from its own geometric trend (see EXPERIMENTS.md).
#include <benchmark/benchmark.h>

#include <cstdio>

#include "chars/bernoulli.hpp"
#include "core/exact_dp.hpp"
#include "support/table.hpp"

namespace {

constexpr double kAlphas[] = {0.01, 0.10, 0.20, 0.30, 0.40, 0.49};
constexpr double kRatios[] = {1.0, 0.9, 0.8, 0.5, 0.25, 0.01};
constexpr std::size_t kDepths[] = {100, 200, 300, 400, 500};

void print_table1() {
  std::printf(
      "Table 1: exact probabilities of k-settlement violations\n"
      "(i.i.d. symbols, Pr[A] = alpha, Pr[h] = ratio * (1 - alpha), |x| -> infinity)\n\n");
  for (double ratio : kRatios) {
    std::printf("Pr[h]/(1-alpha) = %.2f\n", ratio);
    std::vector<std::string> header{"k \\ alpha"};
    for (double alpha : kAlphas) header.push_back(mh::fixed(alpha, 2));
    mh::TextTable table(header);

    // One DP pass per (alpha, ratio) yields the entire k-series.
    std::vector<mh::SettlementSeries> series;
    series.reserve(std::size(kAlphas));
    for (double alpha : kAlphas)
      series.push_back(mh::exact_settlement_series(mh::table1_law(alpha, ratio), 500));

    for (std::size_t k : kDepths) {
      std::vector<std::string> row{std::to_string(k)};
      for (std::size_t a = 0; a < std::size(kAlphas); ++a)
        row.push_back(mh::paper_scientific(series[a].violation[k]));
      table.add_row(std::move(row));
    }
    std::printf("%s\n", table.render().c_str());
  }
}

void BM_ExactSettlementSeries(benchmark::State& state) {
  const auto k = static_cast<std::size_t>(state.range(0));
  const mh::SymbolLaw law = mh::table1_law(0.30, 0.5);
  for (auto _ : state) {
    const mh::SettlementSeries series = mh::exact_settlement_series(law, k);
    benchmark::DoNotOptimize(series.violation.back());
  }
  state.SetComplexityN(static_cast<std::int64_t>(k));
}
BENCHMARK(BM_ExactSettlementSeries)->Arg(50)->Arg(100)->Arg(200)->Arg(400)->Complexity();

}  // namespace

int main(int argc, char** argv) {
  print_table1();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
