// Delta-synchronous demo: how network delay erodes consistency. Samples a
// semi-synchronous slot string, applies the reduction map rho_Delta, and shows
// how honest slots near other honest slots turn effectively adversarial —
// then prices the damage with the Theorem-7 bound.
//
//   ./delta_sync_demo [f [Delta]]
#include <cstdio>
#include <cstdlib>

#include "delta/delta_settlement.hpp"
#include "support/table.hpp"

int main(int argc, char** argv) {
  const double f = argc > 1 ? std::atof(argv[1]) : 0.15;
  const std::size_t delta = argc > 2 ? std::strtoul(argv[2], nullptr, 10) : 2;

  const mh::TetraLaw law = mh::theorem7_law(f, 0.2 * f, 0.5 * f);
  std::printf("active-slot coefficient f = %.2f; per-slot law: empty %.3f, h %.3f, H %.3f, A %.3f\n",
              f, law.pBot, law.ph, law.pH, law.pA);

  mh::Rng rng(11);
  const mh::TetraString w = law.sample_string(60, rng);
  const mh::ReductionResult reduced = mh::reduce(w, delta);
  std::printf("\nraw string     : %s\n", w.to_string().c_str());
  std::printf("rho_%zu-reduced : %s\n", delta, reduced.reduced.to_string().c_str());
  std::printf("(honest slots within %zu slots of another honest slot become A)\n\n", delta);

  std::printf("reduced-law health and Theorem-7 settlement bound (k = 200):\n\n");
  mh::TextTable table({"Delta", "eps'", "bound at k=100", "bound at k=200", "bound at k=400"});
  for (std::size_t d = 0; d <= 8; d += 2) {
    table.add_row({std::to_string(d), mh::fixed(mh::theorem7_epsilon(law, d), 4),
                   mh::paper_scientific(mh::theorem7_bound(law, d, 100)),
                   mh::paper_scientific(mh::theorem7_bound(law, d, 200)),
                   mh::paper_scientific(mh::theorem7_bound(law, d, 400))});
  }
  std::printf("%s\n", table.render().c_str());
  std::printf("sparser slots (smaller f) keep eps' positive for larger Delta: the\n");
  std::printf("classic Praos trade-off between throughput and delay tolerance.\n");
  return 0;
}
