// Quickstart: how long until a PoS transaction is settled?
//
// Given the leader-election probabilities (ph, pH, pA), the library computes
// the exact probability that a slot's settlement is violated after k further
// slots — including the regime with many concurrent honest leaders where this
// paper's ph + pH > pA threshold is the only known guarantee.
//
//   ./quickstart [pA [ph [target_error]]]
#include <cstdio>
#include <cstdlib>

#include "analysis/thresholds.hpp"
#include "core/exact_dp.hpp"
#include "support/table.hpp"

int main(int argc, char** argv) {
  const double pA = argc > 1 ? std::atof(argv[1]) : 0.35;
  const double ph = argc > 2 ? std::atof(argv[2]) : 0.25;
  const double target = argc > 3 ? std::atof(argv[3]) : 1e-9;

  mh::SymbolLaw law{ph, 1.0 - pA - ph, pA};
  law.validate();

  std::printf("leader election law: ph = %.3f, pH = %.3f, pA = %.3f\n", law.ph, law.pH,
              law.pA);
  const mh::RegimeReport regime = mh::classify_regime(law);
  std::printf("security thresholds:\n");
  std::printf("  this work  (ph + pH > pA): %s\n", regime.this_work_applies ? "OK" : "VIOLATED");
  std::printf("  Praos      (ph - pH > pA): %s\n", regime.praos_applies ? "OK" : "violated");
  std::printf("  Snow White (ph      > pA): %s\n\n", regime.snow_white_applies ? "OK" : "violated");

  if (!regime.this_work_applies) {
    std::printf("no consistency guarantee exists for this law (dishonest majority).\n");
    return 1;
  }

  const std::size_t k_max = 600;
  const mh::SettlementSeries series = mh::exact_settlement_series(law, k_max);

  mh::TextTable table({"confirmation depth k", "Pr[settlement violated]"});
  for (std::size_t k : {10u, 25u, 50u, 100u, 200u, 400u, 600u})
    table.add_row({std::to_string(k), mh::paper_scientific(series.violation[k])});
  std::printf("%s\n", table.render().c_str());

  for (std::size_t k = 1; k <= k_max; ++k) {
    if (static_cast<double>(series.violation[k]) < target) {
      std::printf("first depth with violation probability below %.1e: k = %zu\n", target, k);
      return 0;
    }
  }
  std::printf("no depth up to %zu reaches the %.1e target; increase k_max.\n", k_max, target);
  return 0;
}
