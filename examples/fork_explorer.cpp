// Fork explorer: feed a characteristic string, see what the optimal adversary
// can do with it. Prints the canonical fork (Figure-4 adversary), the Catalan
// slots, which slots enjoy the Unique Vertex Property, and the margin
// trajectory that decides settlement.
//
//   ./fork_explorer [characteristic-string]     e.g.  ./fork_explorer hAhAhHAAH
#include <cstdio>

#include "core/astar.hpp"
#include "core/catalan.hpp"
#include "core/relative_margin.hpp"
#include "core/uvp.hpp"
#include "fork/ascii.hpp"
#include "fork/margin.hpp"

int main(int argc, char** argv) {
  const mh::CharString w =
      mh::CharString::parse(argc > 1 ? argv[1] : "hAhAhHAAH");

  std::printf("characteristic string: %s  (h: unique honest, H: concurrent honest, A: adversarial)\n\n",
              w.to_string().c_str());

  const mh::Fork fork = mh::build_canonical_fork(w);
  std::printf("canonical fork built by the optimal online adversary A*:\n\n%s\n",
              mh::render_ascii(fork, w).c_str());

  const mh::CatalanFlags flags = mh::catalan_flags(w);
  std::printf("slot : ");
  for (std::size_t s = 1; s <= w.size(); ++s) std::printf("%3zu", s);
  std::printf("\nsym  : ");
  for (std::size_t s = 1; s <= w.size(); ++s) std::printf("%3c", mh::to_char(w.at(s)));
  std::printf("\nCat  : ");
  for (std::size_t s = 1; s <= w.size(); ++s)
    std::printf("%3c", flags.catalan[s - 1] ? '*' : '.');
  std::printf("   (* = Catalan slot: a barrier for the adversary)\nUVP  : ");
  for (std::size_t s = 1; s <= w.size(); ++s)
    std::printf("%3c", w.uniquely_honest(s) && mh::has_uvp_catalan(w, s) ? 'U' : '.');
  std::printf("   (U = every future viable chain passes this block)\n\n");

  std::printf("margin trajectory mu_eps(w_1..t) (slot 1 is settled while < 0):\n  t  : ");
  const std::vector<std::int64_t> trajectory = mh::margin_trajectory(w, 0);
  for (std::size_t t = 0; t < trajectory.size(); ++t) std::printf("%4zu", t);
  std::printf("\n  mu : ");
  for (const std::int64_t m : trajectory) std::printf("%4lld", static_cast<long long>(m));
  std::printf("\n\nstructural check: mu_eps(F*) = %lld, recurrence = %lld\n",
              static_cast<long long>(mh::margin(fork, w)),
              static_cast<long long>(mh::relative_margin_recurrence(w, 0)));
  return 0;
}
