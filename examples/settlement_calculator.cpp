// Settlement calculator: the Table-1 engine as a CLI. Computes the exact
// k-settlement violation probabilities for a stake-based deployment: given an
// adversarial stake share and the Praos active-slot coefficient f, derive the
// induced (ph, pH, pA) law, then print the settlement series and compare
// against the Praos- and SnowWhite-style certificates.
//
//   ./settlement_calculator [adversarial_stake [f [parties]]]
#include <cstdio>
#include <cstdlib>

#include "analysis/baselines.hpp"
#include "core/exact_dp.hpp"
#include "delta/reduction.hpp"
#include "protocol/leader.hpp"
#include "support/table.hpp"

int main(int argc, char** argv) {
  const double stake = argc > 1 ? std::atof(argv[1]) : 0.30;
  const double f = argc > 2 ? std::atof(argv[2]) : 0.25;
  const std::size_t parties = argc > 3 ? std::strtoul(argv[3], nullptr, 10) : 50;

  std::printf("deployment: adversarial stake %.2f, active-slot coefficient f = %.2f, %zu honest parties\n",
              stake, f, parties);

  const mh::TetraLaw induced = mh::LeaderSchedule::praos_induced_law(f, stake, parties);
  std::printf("induced slot law: empty %.4f, h %.4f, H %.4f, A %.4f\n", induced.pBot,
              induced.ph, induced.pH, induced.pA);

  // Condition on active slots (the synchronous analysis operates on them).
  const mh::SymbolLaw law = mh::reduced_law(induced, 0);
  std::printf("conditioned on active slots: ph %.4f, pH %.4f, pA %.4f\n\n", law.ph, law.pH,
              law.pA);

  if (!law.honest_majority()) {
    std::printf("ph + pH <= pA: no consistency possible.\n");
    return 1;
  }

  const std::size_t k_max = 400;
  const mh::SettlementSeries series = mh::exact_settlement_series(law, k_max);
  mh::TextTable table({"k (active slots)", "exact P(k)", "Praos certificate",
                       "SnowWhite certificate"});
  for (std::size_t k : {25u, 50u, 100u, 200u, 400u})
    table.add_row({std::to_string(k), mh::paper_scientific(series.violation[k]),
                   mh::paper_scientific(mh::praos_settlement_error(law, k)),
                   mh::paper_scientific(mh::snow_white_settlement_error(law, k))});
  std::printf("%s\n", table.render().c_str());
  std::printf("note: with many parties the concurrent-leader mass pH = %.4f makes the\n",
              law.pH);
  std::printf("Praos certificate lag the exact error; this paper's analysis closes the gap.\n");
  return 0;
}
