// PoS network simulation: run the full protocol substrate — leader schedule,
// honest nodes, rushing-adversary network — under a balance attacker, and
// watch the two maximal chains live and die slot by slot.
//
//   ./pos_network_sim [horizon [pA [pH [seed]]]]
#include <cstdio>
#include <cstdlib>

#include "core/relative_margin.hpp"
#include "protocol/adversary.hpp"
#include "protocol/bridge.hpp"
#include "fork/validate.hpp"

int main(int argc, char** argv) {
  const std::size_t horizon = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 40;
  const double pA = argc > 2 ? std::atof(argv[2]) : 0.35;
  const double pH = argc > 3 ? std::atof(argv[3]) : 0.40;
  const std::uint64_t seed = argc > 4 ? std::strtoull(argv[4], nullptr, 10) : 2026;

  mh::SymbolLaw law{1.0 - pA - pH, pH, pA};
  law.validate();
  mh::Rng rng(seed);
  const mh::LeaderSchedule schedule =
      mh::LeaderSchedule::from_symbol_law(law, horizon, 8, rng);
  const mh::CharString w = schedule.characteristic_sync();

  std::printf("schedule: %s\n", w.to_string().c_str());
  std::printf("balance attacker vs 8 honest nodes, adversarial tie-breaking (axiom A0)\n\n");
  std::printf("slot  sym  chain  margin  two-maximal-chains?\n");

  mh::BalanceAttacker adversary;
  mh::Simulation sim(schedule, mh::SimulationConfig{mh::TieBreak::AdversarialOrder, seed}, 0,
                     &adversary);
  for (std::size_t t = 1; t <= horizon; ++t) {
    sim.run_until(t);
    std::size_t best = 0;
    for (const mh::HonestNode& node : sim.nodes())
      best = std::max(best, node.best_length());
    const std::int64_t mu = mh::relative_margin_recurrence(w.prefix(t), 0);
    std::printf("%4zu   %c   %5zu  %6lld  %s\n", t, mh::to_char(w.at(t)), best,
                static_cast<long long>(mu),
                sim.observed_settlement_violation(1) ? "YES (slot 1 unsettled)" : "no");
  }

  const mh::ExecutionFork ef = mh::fork_from_blocks(sim.all_blocks());
  const auto validation = mh::validate_fork(ef.fork, w);
  std::printf("\nexecution mapped onto the fork framework: %zu blocks, axioms %s\n",
              sim.all_blocks().size(), validation.ok ? "(F1)-(F4) hold" : "VIOLATED");
  std::printf("the margin column is the Theorem-5 recurrence: the attack can keep two\n");
  std::printf("maximal chains alive exactly while it stays >= 0.\n");
  return 0;
}
