// Double spend, end to end: what a settlement violation costs an application.
// A merchant ships goods once the payment transaction is buried k blocks deep;
// the attacker quietly mints a private chain carrying a conflicting spend of
// the same coin and releases it after confirmation. The run prints whether the
// paper's confirmation rule (pick k from the exact settlement series) was
// enough for the schedule the lottery produced.
//
//   ./double_spend [k [pA [seed]]]
#include <cstdio>
#include <cstdlib>

#include "core/exact_dp.hpp"
#include "protocol/adversary.hpp"
#include "protocol/ledger.hpp"

int main(int argc, char** argv) {
  const std::size_t k = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 6;
  const double pA = argc > 2 ? std::atof(argv[2]) : 0.45;
  const std::uint64_t seed = argc > 3 ? std::strtoull(argv[3], nullptr, 10) : 99;

  mh::SymbolLaw law{0.35, 1.0 - 0.35 - pA, pA};
  law.validate();
  std::printf("law: ph %.2f, pH %.2f, pA %.2f; merchant confirmation depth k = %zu\n", law.ph,
              law.pH, law.pA, k);
  std::printf("exact optimal violation probability at this depth: %.3Le\n\n",
              mh::settlement_violation_probability(law, k));

  const std::size_t horizon = 12 * k;
  mh::Rng rng(seed);
  const mh::LeaderSchedule schedule =
      mh::LeaderSchedule::from_symbol_law(law, horizon, 6, rng);

  mh::PrivateChainAdversary attacker(1, k);
  mh::Simulation sim(schedule, mh::SimulationConfig{mh::TieBreak::AdversarialOrder, seed}, 0,
                     &attacker);

  // Run until the payment is confirmed; record the merchant's view.
  mh::PayloadStore store;
  const mh::Transaction payment{1, /*conflict=*/7, /*sender=*/0, /*amount=*/1000};
  const mh::Transaction respend{2, /*conflict=*/7, /*sender=*/0, /*amount=*/1000};
  bool payment_attached = false;
  mh::BlockHash merchant_view = mh::genesis_block().hash;
  bool shipped = false;

  for (std::size_t t = 1; t <= horizon; ++t) {
    sim.run_until(t);
    const mh::BlockTree& chain = sim.global_tree();
    // The customer's payment rides in the first honest block; the attacker's
    // conflicting spend rides in its first private block.
    if (!payment_attached && sim.all_blocks().size() > 1) {
      for (const mh::Block& b : sim.all_blocks()) {
        if (b.slot == 0) continue;
        if (b.issuer != mh::kAdversary && store.batch(b.hash) == nullptr) {
          store.attach(b.hash, {payment});
          payment_attached = true;
          break;
        }
      }
    }
    for (const mh::Block& b : sim.all_blocks())
      if (b.issuer == mh::kAdversary && store.batch(b.hash) == nullptr)
        store.attach(b.hash, {respend});

    if (!shipped && payment_attached) {
      const mh::HonestNode& merchant = sim.nodes()[0];
      if (mh::confirmed_spend(chain, merchant.best_head(), store, 7, k)) {
        merchant_view = merchant.best_head();
        shipped = true;
        std::printf("slot %zu: payment confirmed %zu deep -> merchant ships\n", t, k);
      }
    }
  }

  if (!shipped) {
    std::printf("payment never reached depth %zu within %zu slots; nothing shipped.\n", k,
                horizon);
    return 0;
  }

  const mh::BlockHash final_view = sim.nodes()[0].best_head();
  const bool robbed = mh::double_spend_succeeded(sim.global_tree(), merchant_view, final_view,
                                                 store, 7, k);
  const mh::LedgerState ledger = mh::replay_chain(sim.global_tree(), final_view, store);
  std::printf("final ledger accepts tx #%llu for coin 7\n",
              static_cast<unsigned long long>(
                  ledger.accepted.empty() ? 0 : ledger.accepted.front().id));
  std::printf("double spend %s\n", robbed ? "SUCCEEDED: goods shipped, payment reversed"
                                          : "failed: the merchant kept the payment");
  return 0;
}
